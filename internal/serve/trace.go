package serve

import (
	"context"
	"errors"
	"net/http"
	"time"

	"relief/internal/svctrace"
	"relief/internal/trace"
)

// errTraceUnknown answers GET /trace/{id} for IDs the bounded store no
// longer (or never) held.
var errTraceUnknown = errors.New("serve: unknown trace id")

// Span taxonomy: the serving pipeline stages recorded on every request
// trace (docs/OBSERVABILITY.md, "Service tracing"). All wall clock — the
// simulated clock never appears in a span.
const (
	stageAdmission = "admission" // enqueue to worker pickup
	stageCache     = "cache"     // in-memory LRU lookup
	stageDisk      = "disk"      // spill-directory read
	stageProbe     = "probe"     // peer cache probe (GET /result)
	stageForward   = "forward"   // request forwarded to ring owner
	stageBreaker   = "breaker"   // open-breaker fast-fail (no network)
	stageRun       = "run"       // local kernel execution
	stageStream    = "stream"    // sweep NDJSON delivery
)

// stageBounds are the per-stage latency histogram bucket upper bounds in
// milliseconds: sub-millisecond cache traffic up through multi-second
// kernel runs.
var stageBounds = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 30000}

// traceCtxKey carries the request's *svctrace.Trace through handler and
// sweep-cell contexts.
type traceCtxKey struct{}

// recCtxKey carries a kernel event recorder into runSimulation for
// requests with "trace": true.
type recCtxKey struct{}

func withTrace(ctx context.Context, tr *svctrace.Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

func traceFrom(ctx context.Context) *svctrace.Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*svctrace.Trace)
	return tr
}

func withRecorder(ctx context.Context, rec *trace.Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recCtxKey{}, rec)
}

func recorderFrom(ctx context.Context) *trace.Recorder {
	rec, _ := ctx.Value(recCtxKey{}).(*trace.Recorder)
	return rec
}

// maxKernelEvents caps the kernel events captured per traced request, so a
// "trace": true request on a heavy scenario cannot balloon the trace store.
const maxKernelEvents = 20000

// beginTrace starts (or joins) the request's trace: a valid X-Relief-Trace
// header ID is adopted — that is the propagation contract that stitches
// probe, forward, and sweep legs on different replicas into one distributed
// trace — anything else gets a freshly minted ID. The ID is echoed on the
// response so clients always learn it.
func (s *Server) beginTrace(w http.ResponseWriter, r *http.Request) *svctrace.Trace {
	id := r.Header.Get(svctrace.Header)
	if !svctrace.ValidID(id) {
		id = svctrace.NewID()
	}
	w.Header().Set(svctrace.Header, id)
	tr := svctrace.New(id)
	return tr
}

// finishTrace seals a trace, retains it for GET /trace/{id}, and emits the
// structured access record.
func (s *Server) finishTrace(tr *svctrace.Trace, path string) {
	if tr == nil {
		return
	}
	d := tr.Finish()
	s.traces.Add(tr)
	doc := tr.Document()
	s.log.Info("request",
		"path", path,
		"trace_id", tr.ID(),
		"digest", doc.Digest,
		"source", doc.Source,
		"status", doc.Status,
		"dur_ms", float64(d)/float64(time.Millisecond),
	)
}

// attachFlightSpans copies the shared flight's timing onto one waiter's
// trace: the admission wait (enqueue to worker pickup) and the kernel run.
// Joined waiters each get their own copy — the spans describe the one
// execution they all waited on. Kernel events captured for a "trace": true
// request ride along.
func attachFlightSpans(tr *svctrace.Trace, fl *flight) {
	if tr == nil || fl.startAt.IsZero() {
		return
	}
	tr.AddSpan(stageAdmission, fl.enqueueAt, fl.startAt.Sub(fl.enqueueAt), "digest", fl.key)
	tr.AddSpan(stageRun, fl.startAt, fl.runDur, "digest", fl.key)
	if fl.rec != nil {
		tr.AttachKernel(fl.rec.Events())
	}
}

// handleTrace serves GET /trace/{id}: the relief-svctrace/1 document for a
// finished (or still-open sweep) trace, or — with ?format=chrome — the
// combined service+kernel timeline as Chrome trace-event JSON, rendered
// through the same writer as the simulator's own traces.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.traces.Get(id)
	if tr == nil {
		s.writeError(w, http.StatusNotFound, errTraceUnknown)
		return
	}
	doc := tr.Document()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteChromeEvents(w, doc.Events()); err != nil {
			// Status line already out; client sees a truncated body.
			return
		}
		return
	}
	s.writeJSON(w, http.StatusOK, doc)
}
