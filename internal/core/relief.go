// Package core implements RELIEF — RElaxing Least-laxIty to Enable
// Forwarding — the paper's contribution: an online least-laxity-based
// accelerator scheduling policy that escalates newly ready "forwarding
// nodes" (children whose producers just finished, so their input is still
// live in the producer's scratchpad) to the front of the ready queue, and
// throttles those escalations with a laxity-driven feasibility check so
// that priority elevation does not cause deadline misses (paper §III,
// Algorithms 1 and 2).
package core

import (
	"sort"

	"relief/internal/graph"
	"relief/internal/sched"
	"relief/internal/sim"
)

// RELIEF is the scheduling policy of Algorithm 1. Base selects the
// underlying least-laxity ordering: sched.LL{} for plain RELIEF,
// sched.LAX{} for the RELIEF-LAX variant that additionally de-prioritizes
// negative-laxity tasks (paper §V-E).
type RELIEF struct {
	// Base is the least-laxity ordering used when no escalation applies.
	Base sched.Policy
	// DisableFeasibility drops the Algorithm 2 check so every forwarding
	// node is escalated unconditionally (ablation: pure child-first).
	DisableFeasibility bool
	// UnboundedForwards lifts the max_forwards = idle-instances cap
	// (ablation).
	UnboundedForwards bool
}

// New returns the standard RELIEF policy (LL base, feasibility check on).
func New() *RELIEF { return &RELIEF{Base: sched.LL{}} }

// NewLAX returns RELIEF-LAX, the variant integrating LAX's negative-laxity
// de-prioritization.
func NewLAX() *RELIEF { return &RELIEF{Base: sched.LAX{}} }

// Name implements sched.Policy.
func (r *RELIEF) Name() string {
	switch {
	case r.Base == nil || r.Base.Name() == "LL":
		if r.DisableFeasibility {
			return "RELIEF-NoFeas"
		}
		return "RELIEF"
	case r.Base.Name() == "LAX":
		return "RELIEF-LAX"
	default:
		return "RELIEF+" + r.Base.Name()
	}
}

// DeadlineMode implements sched.Policy. RELIEF is agnostic to the laxity
// definition (paper §VII); the base ordering's deadline scheme is used.
func (r *RELIEF) DeadlineMode() graph.DeadlineMode {
	if r.Base == nil {
		return graph.DeadlineCPM
	}
	return r.Base.DeadlineMode()
}

// InsertPos implements sched.Policy: vanilla least-laxity insertion for
// tasks that are not forwarding candidates (root nodes, re-inserts).
func (r *RELIEF) InsertPos(q []*graph.Node, n *graph.Node, now sim.Time) (int, int) {
	return r.base().InsertPos(q, n, now)
}

func (r *RELIEF) base() sched.Policy {
	if r.Base == nil {
		return sched.LL{}
	}
	return r.Base
}

// EnqueueReady implements sched.Escalator — Algorithm 1.
//
// The newly ready children of the finishing node are the forwarding-node
// candidates: their producer's output is still live in its scratchpad.
// Candidates are laxity-sorted (the paper's fwd_nodes list), grouped per
// accelerator kind, and escalated to the front of their ready queue when
// (1) fewer forwarding nodes than idle instances of that kind exist
// (max_forwards) and (2) the feasibility check says the escalation is
// unlikely to cause a deadline miss. Otherwise the candidate is inserted at
// its normal laxity position.
func (r *RELIEF) EnqueueReady(queues sched.Queues, ready []*graph.Node, idle func(k int) int, now sim.Time) (scanned int, escalated []*graph.Node) {
	if len(ready) == 0 {
		return 0, nil
	}
	// fwd_nodes: per-kind laxity-sorted candidate lists (Alg. 1 lines 2-8).
	fwd := make(map[int][]*graph.Node)
	for _, n := range ready {
		k := int(n.Kind)
		lst := fwd[k]
		pos := sort.Search(len(lst), func(i int) bool { return n.Laxity < lst[i].Laxity })
		lst = append(lst, nil)
		copy(lst[pos+1:], lst[pos:])
		lst[pos] = n
		fwd[k] = lst
		scanned += pos
	}
	base := r.base()
	// Iterate kinds in sorted order: map order is randomized, and the
	// escalated list (and any future order-sensitive consumer of it) must
	// not depend on it.
	kinds := make([]int, 0, len(fwd))
	for k := range fwd {
		kinds = append(kinds, k)
	}
	sort.Ints(kinds)
	for _, k := range kinds {
		lst := fwd[k]
		maxForwards := idle(k)
		q := queues[k]
		for _, node := range lst {
			pos, s := base.InsertPos(*q, node, now)
			scanned += s
			canEscalate := maxForwards > 0 || r.UnboundedForwards
			if canEscalate {
				ok, fs := r.feasible(*q, node, pos, now)
				scanned += fs
				if ok {
					sched.Insert(q, node, 0)
					node.IsFwd = true
					node.State = graph.Ready
					if maxForwards > 0 {
						maxForwards--
					}
					escalated = append(escalated, node)
					continue
				}
			}
			sched.Insert(q, node, pos)
			node.IsFwd = false
			node.State = graph.Ready
		}
	}
	return scanned, escalated
}

// feasible is Algorithm 2: escalating fnode ahead of the queue entries
// before index must not make any of them miss its deadline. The queue is
// laxity-sorted, so it suffices to find the first entry that is itself not
// a forwarding node and has positive current laxity; if that entry can
// absorb fnode's runtime, every later entry can too. Negative-laxity
// entries are skipped — they are not expected to meet their deadlines even
// without the promotion. When the escalation is allowed, the bypassed
// entries' stored laxity is charged with fnode's runtime so subsequent
// escalations see the already-consumed slack (Alg. 2 lines 10-14).
func (r *RELIEF) feasible(q []*graph.Node, fnode *graph.Node, index int, now sim.Time) (bool, int) {
	if r.DisableFeasibility {
		return true, 0
	}
	canForward := true
	scanned := 0
	for i, node := range q {
		if i == index {
			break
		}
		scanned++
		currLaxity := sched.CurrentLaxity(node, now)
		if !node.IsFwd && currLaxity > 0 {
			canForward = currLaxity > fnode.PredRuntime
			break
		}
	}
	if canForward {
		for i, node := range q {
			if i == index {
				break
			}
			node.Laxity -= fnode.PredRuntime
		}
	}
	return canForward, scanned
}

var _ sched.Escalator = (*RELIEF)(nil)
