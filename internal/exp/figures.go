package exp

import (
	"fmt"
	"math"

	"relief/internal/graph"
	"relief/internal/predict"
	"relief/internal/sim"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// Table2 reproduces paper Table II: per application, the total compute time
// and the total memory time without forwarding hardware vs an ideal
// scenario where forwarding is used whenever possible. These are sum totals
// that do not account for compute/communication overlap, so they are
// computed analytically from the DAGs and the platform bandwidths.
func Table2() (*Table, error) {
	cfg := xbar.DefaultConfig(7)
	dramT := func(bytes int64) float64 {
		return float64(bytes) / cfg.DRAMBandwidth * 1e6 // µs
	}
	busT := func(bytes int64) float64 {
		return float64(bytes) / cfg.BusBandwidth * 1e6
	}
	t := &Table{
		Title: "Table II: compute vs data movement time (us, sum totals)",
		Note:  "mem(no fwd): all loads/stores via main memory; mem(ideal): forwarding/colocation whenever possible",
		Cols:  []string{"app", "compute", "mem(no fwd)", "mem(ideal)"},
	}
	for a := workload.App(0); a < workload.NumApps; a++ {
		d := workload.MustBuild(a)
		if err := graph.AssignDeadlines(d, graph.DeadlineCPM, func(n *graph.Node) sim.Time {
			return n.Compute + sim.Time(dramT(n.TotalInputBytes()+n.OutputBytes)*float64(sim.Microsecond))
		}); err != nil {
			return nil, err
		}
		var compute, noFwd, ideal float64
		for _, n := range d.Nodes {
			compute += n.Compute.Microseconds()
			noFwd += dramT(n.TotalInputBytes() + n.OutputBytes)
			ideal += dramT(n.ExtraInputBytes)
			for i, p := range n.Parents {
				if !idealColocates(p, n) {
					ideal += busT(n.EdgeInBytes[i])
				}
			}
			if n.IsLeaf() {
				ideal += dramT(n.OutputBytes)
			}
		}
		t.AddRow(a.Name(), f2(compute), f2(noFwd), f2(ideal))
	}
	return t, nil
}

// idealColocates reports whether, with ideal scheduling, the child edge
// would be a colocation: same accelerator kind, and the child is the
// parent's earliest-deadline same-kind child (only one child can run
// immediately after the producer on its accelerator).
func idealColocates(p, c *graph.Node) bool {
	if c.Kind != p.Kind {
		return false
	}
	for _, sib := range p.Children {
		if sib == c || sib.Kind != p.Kind {
			continue
		}
		if sib.RelDeadline < c.RelDeadline ||
			(sib.RelDeadline == c.RelDeadline && sib.ID < c.ID) {
			return false
		}
	}
	return true
}

// mixScenarios enumerates the (mix, policy) grid for a contention level.
func forEachMix(level workload.Contention, fn func(mix []workload.App, name string) error) error {
	for _, mix := range workload.Mixes(level) {
		if err := fn(mix, workload.MixName(mix)); err != nil {
			return err
		}
	}
	return nil
}

// Fig4 reproduces Fig. 4: percent of total forwards and colocations
// (relative to the total number of edges executed) per mix and policy.
func Fig4(s *Sweep, level workload.Contention) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 4 (%s contention): forwards and colocations / edges (%%)", level),
		Note:  "cells: FWD% + COL%",
	}
	t.Cols = append(t.Cols, "mix")
	for _, p := range PolicyNames {
		t.Cols = append(t.Cols, p+" fwd", p+" col")
	}
	perPolicyFwd := make(map[string][]float64)
	perPolicyCol := make(map[string][]float64)
	err := forEachMix(level, func(mix []workload.App, name string) error {
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: level, Policy: p})
			if err != nil {
				return err
			}
			fwd, col := res.Stats.ForwardsPerEdge()
			perPolicyFwd[p] = append(perPolicyFwd[p], fwd)
			perPolicyCol[p] = append(perPolicyCol[p], col)
			row = append(row, f1(fwd), f1(col))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow := []string{"Gmean"}
	for _, p := range PolicyNames {
		grow = append(grow, f1(gmean(perPolicyFwd[p], 0.1)), f1(gmean(perPolicyCol[p], 0.1)))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig5 reproduces Fig. 5: data movement breakdown into main-memory traffic
// and SPAD-to-SPAD traffic, as a percentage of the all-through-main-memory
// baseline; the remainder is eliminated by colocation and skipped
// write-backs.
func Fig5(s *Sweep, level workload.Contention) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 5 (%s contention): data movement breakdown (%% of all-DRAM baseline)", level),
	}
	t.Cols = append(t.Cols, "mix")
	for _, p := range PolicyNames {
		t.Cols = append(t.Cols, p+" dram", p+" spad")
	}
	perDram := make(map[string][]float64)
	perSpad := make(map[string][]float64)
	err := forEachMix(level, func(mix []workload.App, name string) error {
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: level, Policy: p})
			if err != nil {
				return err
			}
			dram, spad := res.Stats.DataMovement()
			perDram[p] = append(perDram[p], dram)
			perSpad[p] = append(perSpad[p], spad)
			row = append(row, f1(dram), f1(spad))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow := []string{"Gmean"}
	for _, p := range PolicyNames {
		grow = append(grow, f1(gmean(perDram[p], 0.1)), f1(gmean(perSpad[p], 0.1)))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig6 reproduces Fig. 6: total main-memory and scratchpad energy under
// high contention, normalised to LAX.
func Fig6(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Figure 6 (high contention): memory energy normalised to LAX",
	}
	t.Cols = append(t.Cols, "mix")
	for _, p := range PolicyNames {
		t.Cols = append(t.Cols, p+" dram", p+" spad")
	}
	perDram := make(map[string][]float64)
	perSpad := make(map[string][]float64)
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		lax, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "LAX"})
		if err != nil {
			return err
		}
		laxDram, laxSpad := lax.Stats.MemoryEnergy()
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: p})
			if err != nil {
				return err
			}
			dram, spad := res.Stats.MemoryEnergy()
			dn, sn := dram/laxDram, spad/laxSpad
			perDram[p] = append(perDram[p], dn)
			perSpad[p] = append(perSpad[p], sn)
			row = append(row, f2(dn), f2(sn))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow := []string{"Gmean"}
	for _, p := range PolicyNames {
		grow = append(grow, f2(gmean(perDram[p], 1e-3)), f2(gmean(perSpad[p], 1e-3)))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig7 reproduces Fig. 7: accelerator occupancy (sum of per-accelerator
// busy compute time over end-to-end execution time; higher is better).
func Fig7(s *Sweep, level workload.Contention) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Figure 7 (%s contention): accelerator occupancy", level)}
	t.Cols = append(t.Cols, "mix")
	t.Cols = append(t.Cols, PolicyNames...)
	per := make(map[string][]float64)
	err := forEachMix(level, func(mix []workload.App, name string) error {
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: level, Policy: p})
			if err != nil {
				return err
			}
			occ := res.Stats.Occupancy()
			per[p] = append(per[p], occ)
			row = append(row, f2(occ))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow := []string{"Gmean"}
	for _, p := range PolicyNames {
		grow = append(grow, f2(gmean(per[p], 1e-3)))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig8 reproduces Fig. 8: percent of node deadlines met.
func Fig8(s *Sweep, level workload.Contention) (*Table, error) {
	t := &Table{Title: fmt.Sprintf("Figure 8 (%s contention): node deadlines met (%%)", level)}
	t.Cols = append(t.Cols, "mix")
	t.Cols = append(t.Cols, PolicyNames...)
	per := make(map[string][]float64)
	err := forEachMix(level, func(mix []workload.App, name string) error {
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: level, Policy: p})
			if err != nil {
				return err
			}
			v := res.Stats.NodeDeadlinePct()
			per[p] = append(per[p], v)
			row = append(row, f1(v))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	grow := []string{"Gmean"}
	for _, p := range PolicyNames {
		grow = append(grow, f1(gmean(per[p], 0.1)))
	}
	t.AddRow(grow...)
	return t, nil
}

// Fig9 reproduces Fig. 9 (high contention) or Fig. 10 (continuous
// contention): per-application slowdown spread and DAG deadlines met, for
// the extended 8-policy set including LL and RELIEF-LAX.
func Fig9(s *Sweep, level workload.Contention) (*Table, *Table, error) {
	fig := "Figure 9"
	if level == workload.Continuous {
		fig = "Figure 10"
	}
	slow := &Table{
		Title: fmt.Sprintf("%sa (%s contention): application slowdown (runtime/deadline)", fig, level),
		Note:  "cells: min/median/max across the mix's applications; inf = starved",
	}
	dag := &Table{Title: fmt.Sprintf("%sb (%s contention): DAG deadlines met (%%)", fig, level)}
	slow.Cols = append(slow.Cols, "mix")
	dag.Cols = append(dag.Cols, "mix")
	slow.Cols = append(slow.Cols, FairnessPolicyNames...)
	dag.Cols = append(dag.Cols, FairnessPolicyNames...)
	err := forEachMix(level, func(mix []workload.App, name string) error {
		srow := []string{name}
		drow := []string{name}
		for _, p := range FairnessPolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: level, Policy: p})
			if err != nil {
				return err
			}
			mn, md, mx, _ := res.Stats.SlowdownSpread()
			srow = append(srow, fmt.Sprintf("%s/%s/%s", f2(mn), f2(md), f2(mx)))
			drow = append(drow, f1(res.Stats.DAGDeadlinePct()))
		}
		slow.AddRow(srow...)
		dag.AddRow(drow...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return slow, dag, nil
}

// Table7 reproduces paper Table VII: the number of finished DAG iterations
// per application in each continuous-contention mix.
func Table7(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Table VII: finished DAGs per application, continuous contention",
		Note:  "cells: per-application finished iteration counts in mix order",
	}
	t.Cols = append(t.Cols, "policy")
	for _, mix := range workload.Mixes(workload.Continuous) {
		t.Cols = append(t.Cols, workload.MixName(mix))
	}
	for _, p := range FairnessPolicyNames {
		row := []string{p}
		for _, mix := range workload.Mixes(workload.Continuous) {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.Continuous, Policy: p})
			if err != nil {
				return nil, err
			}
			cell := ""
			for i, app := range mix {
				if i > 0 {
					cell += "/"
				}
				n := 0
				if a := res.Stats.Apps[app.Name()]; a != nil {
					n = a.Iterations
				}
				cell += fmt.Sprintf("%d", n)
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table8 reproduces paper Table VIII: predictor accuracy under high
// contention with RELIEF, and the (in)sensitivity of forwards and node
// deadlines to the bandwidth predictor choice.
func Table8(s *Sweep) (*Table, error) {
	bwNames := []string{"max", "last", "average", "ewma"}
	t := &Table{
		Title: "Table VIII: predictor accuracy and performance impact (high contention, RELIEF)",
		Note:  "errors: mean signed %, negative = underestimation; BW err from each bandwidth predictor",
	}
	t.Cols = []string{"mix", "compute err", "DM err"}
	for _, b := range bwNames {
		t.Cols = append(t.Cols, "BWerr:"+b)
	}
	for _, b := range bwNames {
		t.Cols = append(t.Cols, "fwd:"+b)
	}
	for _, b := range bwNames {
		t.Cols = append(t.Cols, "nodeDL:"+b)
	}
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		row := []string{name}
		// Compute and data-movement errors with the graph-analysis DM
		// predictor active.
		pr, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", DM: predict.DMPredict})
		if err != nil {
			return err
		}
		cErr, dmErr, _ := pr.Stats.PredErr.MeanSigned()
		row = append(row, f2(cErr), f2(dmErr))
		var fwds, dls []string
		for _, b := range bwNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", BWPredictor: b})
			if err != nil {
				return err
			}
			row = append(row, f2(res.Stats.PredErr.MeanSignedBW()))
			fwds = append(fwds, fmt.Sprintf("%d", res.Stats.Forwards))
			dls = append(dls, fmt.Sprintf("%d", res.Stats.NodesMetDeadline))
		}
		row = append(row, fwds...)
		row = append(row, dls...)
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig11 reproduces Fig. 11: impact of the memory predictors on node
// deadlines met under high contention, normalised to Max predictors for
// both bandwidth and data movement.
func Fig11(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Figure 11 (high contention, RELIEF): node deadlines met, normalised to Max predictors",
		Cols:  []string{"mix", "pred.BW", "pred.DM", "pred.BW+DM"},
	}
	var c1, c2, c3 []float64
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		base, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
		if err != nil {
			return err
		}
		den := float64(base.Stats.NodesMetDeadline)
		if den == 0 {
			den = 1
		}
		get := func(bw string, dm predict.DMMode) (float64, error) {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", BWPredictor: bw, DM: dm})
			if err != nil {
				return 0, err
			}
			return float64(res.Stats.NodesMetDeadline) / den, nil
		}
		v1, err := get("average", predict.DMMax)
		if err != nil {
			return err
		}
		v2, err := get("max", predict.DMPredict)
		if err != nil {
			return err
		}
		v3, err := get("average", predict.DMPredict)
		if err != nil {
			return err
		}
		c1, c2, c3 = append(c1, v1), append(c2, v2), append(c3, v3)
		t.AddRow(name, f2(v1), f2(v2), f2(v3))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("Gmean", f2(gmean(c1, 1e-3)), f2(gmean(c2, 1e-3)), f2(gmean(c3, 1e-3)))
	return t, nil
}

// Fig12 reproduces Fig. 12: average and tail latency of pushing a task
// into the ready queue for each policy, on the modeled Cortex-A7 class
// microcontroller, under high contention.
func Fig12(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Figure 12 (high contention): scheduler latency (us)",
		Note:  "cells: average/tail per ready-queue insertion (modeled microcontroller cost)",
	}
	t.Cols = append(t.Cols, "mix")
	t.Cols = append(t.Cols, PolicyNames...)
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		row := []string{name}
		for _, p := range PolicyNames {
			res, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: p})
			if err != nil {
				return err
			}
			avg, tail := res.Stats.SchedLatency()
			row = append(row, fmt.Sprintf("%s/%s", f2(avg.Microseconds()), f2(tail.Microseconds())))
		}
		t.AddRow(row...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig13 reproduces Fig. 13: RELIEF's sensitivity to the interconnect
// topology under high contention — interconnect occupancy and execution
// time normalised to LAX on the bus.
func Fig13(s *Sweep) (*Table, error) {
	t := &Table{
		Title: "Figure 13 (high contention): interconnect sensitivity",
		Note:  "occupancy in %, execution time normalised to LAX/bus",
		Cols: []string{"mix", "LAX occ", "RELIEF-bus occ", "RELIEF-xbar occ",
			"LAX time", "RELIEF-bus time", "RELIEF-xbar time"},
	}
	var occL, occB, occX, tB, tX []float64
	err := forEachMix(workload.High, func(mix []workload.App, name string) error {
		lax, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "LAX"})
		if err != nil {
			return err
		}
		rb, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
		if err != nil {
			return err
		}
		rx, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", Topology: xbar.Crossbar})
		if err != nil {
			return err
		}
		den := float64(lax.Stats.Makespan)
		occL = append(occL, 100*lax.Stats.InterconnectOccupancy)
		occB = append(occB, 100*rb.Stats.InterconnectOccupancy)
		occX = append(occX, 100*rx.Stats.InterconnectOccupancy)
		tB = append(tB, float64(rb.Stats.Makespan)/den)
		tX = append(tX, float64(rx.Stats.Makespan)/den)
		t.AddRow(name,
			f1(100*lax.Stats.InterconnectOccupancy),
			f1(100*rb.Stats.InterconnectOccupancy),
			f1(100*rx.Stats.InterconnectOccupancy),
			"1.00", f2(float64(rb.Stats.Makespan)/den), f2(float64(rx.Stats.Makespan)/den))
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("Gmean", f1(gmean(occL, 1e-2)), f1(gmean(occB, 1e-2)), f1(gmean(occX, 1e-2)),
		"1.00", f2(gmean(tB, 1e-3)), f2(gmean(tX, 1e-3)))
	return t, nil
}

// Ablation evaluates the design choices DESIGN.md calls out, under high
// contention, reporting per-variant geometric means across all mixes.
func Ablation(s *Sweep) (*Table, error) {
	type variant struct {
		name string
		sc   func(mix []workload.App) Scenario
	}
	base := func(mix []workload.App) Scenario {
		return Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"}
	}
	variants := []variant{
		{"RELIEF", base},
		{"no feasibility check", func(m []workload.App) Scenario {
			sc := base(m)
			sc.Policy = "RELIEF-NoFeas"
			return sc
		}},
		{"unbounded forwards", func(m []workload.App) Scenario {
			sc := base(m)
			sc.Policy = "RELIEF-Unbounded"
			return sc
		}},
		{"HetSched laxity base", func(m []workload.App) Scenario {
			sc := base(m)
			sc.Policy = "RELIEF-HetSched"
			return sc
		}},
		{"single output partition", func(m []workload.App) Scenario {
			sc := base(m)
			sc.OutputPartitions = 1
			return sc
		}},
		{"triple output partition", func(m []workload.App) Scenario {
			sc := base(m)
			sc.OutputPartitions = 3
			return sc
		}},
		{"always write back", func(m []workload.App) Scenario {
			sc := base(m)
			sc.AlwaysWriteBack = true
			return sc
		}},
	}
	t := &Table{
		Title: "Ablation (high contention, gmean over mixes)",
		Cols:  []string{"variant", "fwd%", "col%", "dram%", "nodeDL%", "occupancy"},
	}
	for _, v := range variants {
		var fwd, col, dram, dl, occ []float64
		err := forEachMix(workload.High, func(mix []workload.App, name string) error {
			res, err := s.Get(v.sc(mix))
			if err != nil {
				return err
			}
			f, c := res.Stats.ForwardsPerEdge()
			d, _ := res.Stats.DataMovement()
			fwd = append(fwd, f)
			col = append(col, c)
			dram = append(dram, d)
			dl = append(dl, res.Stats.NodeDeadlinePct())
			occ = append(occ, res.Stats.Occupancy())
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, f1(gmean(fwd, 0.1)), f1(gmean(col, 0.1)),
			f1(gmean(dram, 0.1)), f1(gmean(dl, 0.1)), f2(gmean(occ, 1e-3)))
	}
	return t, nil
}

var _ = math.Inf // keep math imported for future use
