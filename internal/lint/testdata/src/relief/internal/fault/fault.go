// nodeterm fixture: no wall clock, no ambient randomness in simulation
// packages.
package fault

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `wall-clock call time\.Now in simulation package fault`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock call time\.Since in simulation package fault`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn is not seed-stable`
}

func globalFloat() float64 {
	return rand.Float64() // want `global rand\.Float64 is not seed-stable`
}

// seeded draws from a caller-seeded source: deterministic, no diagnostic.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// duration arithmetic never reads the clock; no diagnostic.
func pure(d time.Duration) float64 {
	return d.Seconds()
}

func allowedProfiling() time.Time {
	//lint:allow nodeterm profiling wrapper; its output never feeds a digest
	return time.Now()
}

func inertDirective() time.Time {
	//lint:allow nodeterm
	return time.Now() // want `wall-clock call time\.Now in simulation package fault`
}
