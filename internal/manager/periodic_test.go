package manager

import (
	"testing"

	"relief/internal/core"
	"relief/internal/graph"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/workload"
)

func TestSubmitPeriodic(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	period := 7 * sim.Millisecond
	horizon := 50 * sim.Millisecond
	err := m.SubmitPeriodic(func() *graph.DAG { return workload.MustBuild(workload.GRU) }, period, horizon)
	if err != nil {
		t.Fatal(err)
	}
	m.RunContinuous(horizon)
	a := st.Apps["gru"]
	// ceil(50/7) = 8 releases; GRU alone runs ~3.3ms, so all but possibly
	// the last finish within the horizon.
	if a.Iterations < 7 {
		t.Fatalf("finished %d periodic iterations, want >= 7", a.Iterations)
	}
	if a.DeadlinesMet != a.Iterations {
		t.Errorf("uncontended periodic GRU missed deadlines: %d/%d", a.DeadlinesMet, a.Iterations)
	}
}

func TestSubmitPeriodicOverlap(t *testing.T) {
	// A period shorter than the app runtime queues instances; all frames
	// still finish (late) and releases stay on the period grid.
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	period := 2 * sim.Millisecond
	var dags []*graph.DAG
	err := m.SubmitPeriodic(func() *graph.DAG {
		d := workload.MustBuild(workload.GRU)
		dags = append(dags, d)
		return d
	}, period, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	m.RunContinuous(60 * sim.Millisecond)
	if len(dags) != 5 {
		t.Fatalf("released %d instances, want 5", len(dags))
	}
	for i, d := range dags {
		if d.Release != sim.Time(i)*period {
			t.Errorf("instance %d released at %v, want %v", i, d.Release, sim.Time(i)*period)
		}
		if !d.Finished() {
			t.Errorf("instance %d unfinished", i)
		}
		if d.Iteration != i {
			t.Errorf("instance %d iteration = %d", i, d.Iteration)
		}
	}
}

func TestSubmitPeriodicInvalidPeriod(t *testing.T) {
	m := New(sim.NewKernel(), DefaultConfig(core.New()), stats.New())
	if err := m.SubmitPeriodic(func() *graph.DAG { return workload.MustBuild(workload.GRU) }, 0, sim.Millisecond); err == nil {
		t.Fatal("zero period accepted")
	}
}

// TestTraceRecordsRun: a traced simulation produces compute, DMA,
// writeback, schedule, and release events with coherent timestamps.
func TestTraceRecordsRun(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	cfg := DefaultConfig(core.New())
	rec := trace.NewRecorder()
	cfg.Trace = rec
	m := New(k, cfg, st)
	if err := m.Submit(workload.MustBuild(workload.Canny), 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	kinds := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
		if e.End < e.Start {
			t.Fatalf("event %v ends before it starts", e)
		}
	}
	if kinds[trace.TaskCompute] != 13 {
		t.Errorf("compute events = %d, want 13 (one per node)", kinds[trace.TaskCompute])
	}
	if kinds[trace.TaskInput] != 13 {
		t.Errorf("input events = %d, want 13", kinds[trace.TaskInput])
	}
	if kinds[trace.Release] != 1 || kinds[trace.Schedule] == 0 || kinds[trace.Writeback] == 0 {
		t.Errorf("missing event kinds: %v", kinds)
	}
	if kinds[trace.Forward] == 0 {
		t.Errorf("canny should record forwards, got none")
	}
}

// TestDetailedDRAMRuns: the bank-level controller slots in and produces
// results close to the calibrated simple model.
func TestDetailedDRAMRuns(t *testing.T) {
	runWith := func(detailed bool) *stats.Stats {
		k := sim.NewKernel()
		st := stats.New()
		cfg := DefaultConfig(core.New())
		cfg.DetailedDRAM = detailed
		m := New(k, cfg, st)
		for _, app := range []workload.App{workload.Canny, workload.GRU} {
			if err := m.Submit(workload.MustBuild(app), 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Run()
		if detailed {
			dc := m.DRAMController()
			if dc == nil {
				t.Fatal("detailed DRAM not installed")
			}
			if dc.RowHitRate() < 0.8 {
				t.Errorf("row hit rate = %.2f, want > 0.8 for streaming DMA", dc.RowHitRate())
			}
		} else if m.DRAMController() != nil {
			t.Fatal("unexpected DRAM controller")
		}
		return st
	}
	simple := runWith(false)
	detailed := runWith(true)
	if simple.NodesDone != detailed.NodesDone {
		t.Fatalf("node counts differ: %d vs %d", simple.NodesDone, detailed.NodesDone)
	}
	ratio := float64(detailed.Makespan) / float64(simple.Makespan)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("detailed/simple makespan = %.2f, want within 25%% (calibrated)", ratio)
	}
}
