// relief-bench regenerates the paper's evaluation tables and figures as
// text tables.
//
// Usage:
//
//	relief-bench                 # run every experiment
//	relief-bench -exp fig4       # one experiment
//	relief-bench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"relief/internal/exp"
	"relief/internal/workload"
)

type generator func(*exp.Sweep) ([]*exp.Table, error)

func one(fn func(*exp.Sweep) (*exp.Table, error)) generator {
	return func(s *exp.Sweep) ([]*exp.Table, error) {
		t, err := fn(s)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	}
}

func perLevel(fn func(*exp.Sweep, workload.Contention) (*exp.Table, error)) generator {
	return func(s *exp.Sweep) ([]*exp.Table, error) {
		var out []*exp.Table
		for _, lvl := range []workload.Contention{workload.Low, workload.Medium, workload.High, workload.Continuous} {
			t, err := fn(s, lvl)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	}
}

var experiments = map[string]generator{
	"table2": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.Table2()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"fig4": perLevel(exp.Fig4),
	"fig5": perLevel(exp.Fig5),
	"fig6": one(exp.Fig6),
	"fig7": perLevel(exp.Fig7),
	"fig8": perLevel(exp.Fig8),
	"fig9": func(s *exp.Sweep) ([]*exp.Table, error) {
		a, b, err := exp.Fig9(s, workload.High)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{a, b}, nil
	},
	"fig10": func(s *exp.Sweep) ([]*exp.Table, error) {
		a, b, err := exp.Fig9(s, workload.Continuous)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{a, b}, nil
	},
	"table7":   one(exp.Table7),
	"table8":   one(exp.Table8),
	"fig11":    one(exp.Fig11),
	"fig12":    one(exp.Fig12),
	"fig13":    one(exp.Fig13),
	"ablation": one(exp.Ablation),
	"dram":     one(exp.DRAMStudy),
	"energy":   one(exp.EnergyStudy),
	"scaling": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.ScalingStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"periodic": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.PeriodicStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"tiled": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.TiledStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
}

// order fixes a presentation order for -exp all.
var order = []string{
	"table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"table7", "table8", "fig11", "fig12", "fig13", "ablation", "dram",
	"periodic", "tiled", "energy", "scaling",
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run (see -list)")
	format := flag.String("format", "text", "output format: text or csv")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel simulations while prefetching the scenario grid")
	jsonOut := flag.String("json", "", "also dump every raw scenario result as JSON to this file")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	sweep := exp.NewSweep()
	if *expFlag == "all" && *jobs > 1 {
		sweep.Warm(exp.MainGrid(), *jobs)
	}
	names := order
	if *expFlag != "all" {
		if _, ok := experiments[*expFlag]; !ok {
			fmt.Fprintf(os.Stderr, "relief-bench: unknown experiment %q (use -list)\n", *expFlag)
			os.Exit(2)
		}
		names = []string{*expFlag}
	}
	defer func() {
		if *jsonOut == "" {
			return
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relief-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := sweep.DumpJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "relief-bench: %v\n", err)
			os.Exit(1)
		}
	}()
	for _, name := range names {
		tables, err := experiments[name](sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "relief-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			switch *format {
			case "csv":
				if err := t.RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "relief-bench: %v\n", err)
					os.Exit(1)
				}
				fmt.Println()
			default:
				t.Render(os.Stdout)
			}
		}
	}
}
