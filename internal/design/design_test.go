package design

import (
	"testing"

	"relief/internal/accel"
)

func TestEvaluateBasics(t *testing.T) {
	k := Kernel{Kind: accel.ElemMatrix, WorkOps: 1000, MemOps: 500, FixedCycles: 100}
	d1, e1 := Evaluate(k, Config{FUs: 1, Ports: 1})
	d2, e2 := Evaluate(k, Config{FUs: 2, Ports: 1})
	if d2 >= d1 {
		t.Errorf("doubling FUs did not reduce compute-bound latency: %v -> %v", d1, d2)
	}
	if e1 <= 0 || e2 <= 0 {
		t.Fatal("non-positive energy")
	}
	// Latency floor: the memory side binds once compute is fast enough.
	dWide, _ := Evaluate(k, Config{FUs: 16, Ports: 1})
	wantCycles := k.MemOps/1 + k.FixedCycles
	if float64(dWide)/1e3 != wantCycles { // ps -> cycles at 1 GHz
		t.Errorf("mem-bound latency = %v, want %v cycles", dWide, wantCycles)
	}
}

func TestEvaluateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	Evaluate(Kernel{WorkOps: 1, MemOps: 1}, Config{FUs: 0, Ports: 1})
}

// TestED2InteriorOptimum: the chosen design is strictly inside the sweep
// bounds for every paper kernel — the quadratic width penalty bounds the
// optimum away from max-width designs.
func TestED2InteriorOptimum(t *testing.T) {
	sp := DefaultSpace()
	for _, k := range Kernels() {
		p := Choose(k, sp)
		if p.Config.FUs >= sp.MaxFUs {
			t.Errorf("%v: optimum FUs %d rides the sweep cap", k.Kind, p.Config.FUs)
		}
		if p.Config.Ports > sp.MaxPorts {
			t.Errorf("%v: optimum ports %d outside space", k.Kind, p.Config.Ports)
		}
	}
}

// TestED2IsMinimum: no point in the space beats the chosen one.
func TestED2IsMinimum(t *testing.T) {
	sp := DefaultSpace()
	for _, k := range Kernels() {
		best := Choose(k, sp)
		pts, _ := Sweep(k, sp)
		for _, p := range pts {
			if p.ED2 < best.ED2 {
				t.Fatalf("%v: %+v beats chosen %+v", k.Kind, p, best)
			}
		}
		if got := ED2(k, best.Config); got != best.ED2 {
			t.Errorf("%v: ED2 recomputation mismatch", k.Kind)
		}
	}
}

// TestWideningPastKneeHurts: adding FUs beyond the optimum increases ED^2
// (delay no longer falls enough to pay for the energy).
func TestWideningPastKneeHurts(t *testing.T) {
	sp := DefaultSpace()
	for _, k := range Kernels() {
		best := Choose(k, sp)
		wider := best.Config
		wider.FUs = sp.MaxFUs
		if wider.FUs == best.Config.FUs {
			continue
		}
		if ED2(k, wider) <= best.ED2 {
			t.Errorf("%v: max-width design does not lose on ED^2", k.Kind)
		}
	}
}

// TestChosenLatencyTracksCalibration: every chosen design's latency is
// within ~40% of the measured compute time the simulator uses (Table II) —
// the DSE reproduces the methodology; the timing model keeps the measured
// calibration.
func TestChosenLatencyTracksCalibration(t *testing.T) {
	sp := DefaultSpace()
	for _, k := range Kernels() {
		p := Choose(k, sp)
		cal := accel.ComputeTime(k.Kind, accel.OpDefault, 128*128, 5)
		ratio := float64(p.Latency) / float64(cal)
		if ratio < 0.6 || ratio > 1.67 {
			t.Errorf("%v: DSE latency %v vs calibrated %v (ratio %.2f)", k.Kind, p.Latency, cal, ratio)
		}
	}
}

// TestElemMatrixIsMemoryBound: the paper's key workload property — the
// elem-matrix accelerator has little data reuse, so its chosen design is
// memory-port bound.
func TestElemMatrixIsMemoryBound(t *testing.T) {
	k, err := KernelFor(accel.ElemMatrix)
	if err != nil {
		t.Fatal(err)
	}
	p := Choose(k, DefaultSpace())
	compute := k.WorkOps / float64(p.Config.FUs)
	mem := k.MemOps / float64(p.Config.Ports)
	if mem < compute*0.8 {
		t.Errorf("elem-matrix chosen design is strongly compute-bound (compute %.0f vs mem %.0f cycles)",
			compute, mem)
	}
	// Convolution, by contrast, has abundant reuse: compute-bound.
	kc, _ := KernelFor(accel.Convolution)
	pc := Choose(kc, DefaultSpace())
	cc := kc.WorkOps / float64(pc.Config.FUs)
	mc := kc.MemOps / float64(pc.Config.Ports)
	if cc < mc {
		t.Errorf("convolution chosen design is memory-bound (compute %.0f vs mem %.0f)", cc, mc)
	}
}

func TestKernelForUnknown(t *testing.T) {
	if _, err := KernelFor(accel.Kind(99)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if len(Kernels()) != int(accel.NumKinds) {
		t.Fatalf("Kernels() covers %d kinds, want %d", len(Kernels()), accel.NumKinds)
	}
}

func TestSweepEmptySpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty space accepted")
		}
	}()
	Sweep(Kernel{WorkOps: 1, MemOps: 1}, Space{})
}
