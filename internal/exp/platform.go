package exp

import (
	"encoding/json"
	"fmt"
	"io"

	"relief/internal/accel"
	"relief/internal/dram"
	"relief/internal/manager"
	"relief/internal/mem"
	"relief/internal/predict"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/xbar"
)

// PlatformSpec is a JSON-loadable platform description, playing the role
// of gem5's configuration scripts: accelerator instance counts, scratchpad
// buffering, interconnect, memory system, and manager cost model. Zero
// fields keep the paper's defaults (Table VI).
type PlatformSpec struct {
	// Instances maps accelerator names (e.g. "elem-matrix") to instance
	// counts.
	Instances map[string]int `json:"instances,omitempty"`
	// OutputPartitions is the per-accelerator output buffering (default 2).
	OutputPartitions int `json:"output_partitions,omitempty"`
	// Topology is "bus" (default) or "xbar".
	Topology string `json:"topology,omitempty"`
	// BusGBs and DRAMGBs override the link/memory bandwidths (GB/s).
	BusGBs  float64 `json:"bus_gbs,omitempty"`
	DRAMGBs float64 `json:"dram_gbs,omitempty"`
	// DetailedDRAM enables the bank-level LPDDR5 controller;
	// DRAMPolicy is "fr-fcfs" (default) or "fcfs"; DRAMChannels > 1 adds
	// interleaved channels.
	DetailedDRAM bool   `json:"detailed_dram,omitempty"`
	DRAMPolicy   string `json:"dram_policy,omitempty"`
	DRAMChannels int    `json:"dram_channels,omitempty"`
	// BWPredictor is "max" (default), "last", "average", or "ewma";
	// PredictDM enables the graph-analysis data-movement predictor.
	BWPredictor string `json:"bw_predictor,omitempty"`
	PredictDM   bool   `json:"predict_dm,omitempty"`
	// DisableForwarding turns the forwarding hardware off.
	DisableForwarding bool `json:"disable_forwarding,omitempty"`
	// SchedBaseNS / SchedPerScanNS override the manager's modeled
	// microcontroller cost (nanoseconds).
	SchedBaseNS    float64 `json:"sched_base_ns,omitempty"`
	SchedPerScanNS float64 `json:"sched_per_scan_ns,omitempty"`
}

// LoadPlatform parses a PlatformSpec from JSON, rejecting unknown fields.
func LoadPlatform(r io.Reader) (*PlatformSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p PlatformSpec
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("exp: platform spec: %w", err)
	}
	return &p, nil
}

// Apply folds the spec into a manager configuration built around policy.
func (p *PlatformSpec) Apply(policy sched.Policy) (manager.Config, error) {
	cfg := manager.DefaultConfig(policy)
	for name, n := range p.Instances {
		found := false
		for _, k := range accel.AllKinds() {
			if k.String() == name {
				if n < 1 {
					return cfg, fmt.Errorf("exp: instances[%s] = %d", name, n)
				}
				cfg.Instances[k] = n
				found = true
			}
		}
		if !found {
			return cfg, fmt.Errorf("exp: unknown accelerator %q", name)
		}
	}
	if p.OutputPartitions > 0 {
		cfg.OutputPartitions = p.OutputPartitions
	}
	switch p.Topology {
	case "", "bus":
	case "xbar":
		cfg.Interconnect.Topology = xbar.Crossbar
	default:
		return cfg, fmt.Errorf("exp: unknown topology %q", p.Topology)
	}
	if p.BusGBs > 0 {
		cfg.Interconnect.BusBandwidth = p.BusGBs * mem.GB
	}
	if p.DRAMGBs > 0 {
		cfg.Interconnect.DRAMBandwidth = p.DRAMGBs * mem.GB
	}
	cfg.DetailedDRAM = p.DetailedDRAM
	switch p.DRAMPolicy {
	case "", "fr-fcfs":
	case "fcfs":
		cfg.DRAMPolicy = dram.FCFS
	default:
		return cfg, fmt.Errorf("exp: unknown dram policy %q", p.DRAMPolicy)
	}
	if p.DRAMChannels > 1 && !p.DetailedDRAM {
		return cfg, fmt.Errorf("exp: dram_channels requires detailed_dram")
	}
	cfg.DRAMChannels = p.DRAMChannels
	if p.BWPredictor != "" {
		bw, err := predict.NewBW(p.BWPredictor, cfg.Interconnect.DRAMBandwidth)
		if err != nil {
			return cfg, err
		}
		cfg.BW = bw
	}
	if p.PredictDM {
		cfg.DM = predict.DMPredict
	}
	cfg.DisableForwarding = p.DisableForwarding
	if p.SchedBaseNS > 0 {
		cfg.SchedBase = sim.Time(p.SchedBaseNS * float64(sim.Nanosecond))
	}
	if p.SchedPerScanNS > 0 {
		cfg.SchedPerScan = sim.Time(p.SchedPerScanNS * float64(sim.Nanosecond))
	}
	// Recompute interconnect port count after instance overrides.
	total := 0
	for _, c := range cfg.Instances {
		total += c
	}
	cfg.Interconnect.Instances = total
	return cfg, nil
}
