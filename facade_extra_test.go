package relief_test

import (
	"bytes"
	"strings"
	"testing"

	"relief"
)

func TestSubmitPeriodicFacade(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	err := sys.SubmitPeriodic(func() *relief.DAG {
		d, err := relief.BuildWorkload("canny")
		if err != nil {
			panic(err)
		}
		return d
	}, 16600*relief.Microsecond, 50*relief.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.RunFor(60 * relief.Millisecond)
	a := rep.Apps["canny"]
	if a.Iterations != 4 { // releases at 0, 16.6, 33.2, 49.8 ms
		t.Fatalf("periodic canny finished %d frames, want 4", a.Iterations)
	}
	if a.DeadlinesMet != 4 {
		t.Errorf("uncontended periodic canny missed deadlines: %d/4", a.DeadlinesMet)
	}
}

func TestTraceThroughFacade(t *testing.T) {
	rec := relief.NewTraceRecorder()
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF", Trace: rec})
	d, _ := relief.BuildWorkload("gru")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if rec.Len() == 0 {
		t.Fatal("trace recorded nothing")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || buf.Bytes()[0] != '[' {
		t.Fatal("chrome trace output malformed")
	}
}

func TestWriteGem5StatsFacade(t *testing.T) {
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	var buf bytes.Buffer
	if err := sys.WriteGem5Stats(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sim_ticks") || !strings.Contains(out, "system.app.canny.iterations") {
		t.Fatalf("gem5 stats incomplete:\n%s", out[:200])
	}
}

func TestMetricsThroughFacade(t *testing.T) {
	reg := relief.NewMetricsRegistry()
	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"},
		relief.WithMetrics(reg), relief.WithMetricsInterval(20*relief.Microsecond))
	d, _ := relief.BuildWorkload("canny")
	if err := sys.Submit(d, 0); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if reg.Samples() == 0 {
		t.Fatal("probes collected no samples")
	}
	at := reg.Attribution()
	if at == nil || at.Total.Nodes == 0 {
		t.Fatal("attribution recorded no nodes")
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schema": "relief-metrics/1"`) {
		t.Fatal("JSON summary missing schema header")
	}
}
