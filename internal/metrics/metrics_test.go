package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"relief/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	r.SetPolicy("X")
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(3)
	r.CounterFunc("cf", "", func() float64 { return 1 })
	r.GaugeFunc("gf", "", func() float64 { return 1 })
	r.Histogram("h", "").Observe(5)
	r.ObserveNodeLatency("app", 1, 2, 3, 4, 5)
	r.StartProbes(sim.NewKernel(), 0)
	r.FinalSample(0)
	if r.Samples() != 0 || r.Policy() != "" || r.Attribution() != nil {
		t.Fatal("nil registry must collect nothing")
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("relief_c", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	g := r.Gauge("relief_g", "help")
	g.Set(7)
	g.Set(2.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "relief_c 5") {
		t.Errorf("counter value wrong:\n%s", out)
	}
	if !strings.Contains(out, "relief_g 2.5") {
		t.Errorf("gauge value wrong:\n%s", out)
	}
}

func TestRegisterShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "")
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %v", h.Max())
	}
	// Log buckets give upper-bound estimates: p50 of 1..1000 is in (256,512].
	if q := h.Quantile(0.5); q < 500 || q > 512 {
		t.Errorf("p50 = %v, want in [500,512]", q)
	}
	// The top quantiles cap at the exact max.
	if q := h.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %v, want 1000 (capped at max)", q)
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Errorf("Mean = %v, want 500.5", m)
	}
	// Empty histogram quantile is 0.
	if q := r.Histogram("empty", "").Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestProbeSamplingAndTermination(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry()
	var ticks int
	r.GaugeFunc("relief_ticks", "", func() float64 { return float64(ticks) })
	// Simulated work: an event every 30us until 200us.
	var arm func(at sim.Time)
	arm = func(at sim.Time) {
		if at > 200*sim.Microsecond {
			return
		}
		k.At(at, func() {
			ticks++
			arm(at + 30*sim.Microsecond)
		})
	}
	arm(0)
	r.StartProbes(k, 50*sim.Microsecond)
	k.Run() // must drain: probes only re-arm while other events are pending
	r.FinalSample(k.Now())
	if r.Interval() != 50*sim.Microsecond {
		t.Fatalf("Interval = %v", r.Interval())
	}
	if r.Samples() < 4 {
		t.Fatalf("Samples = %d, want >= 4 over a 210us run at 50us", r.Samples())
	}
	// FinalSample at an already-sampled instant must not duplicate.
	n := r.Samples()
	r.FinalSample(k.Now())
	if r.Samples() != n {
		t.Fatal("FinalSample duplicated the last row")
	}
}

func TestCSVShape(t *testing.T) {
	k := sim.NewKernel()
	r := NewRegistry()
	r.GaugeFunc("b_metric", "", func() float64 { return 2 })
	r.GaugeFunc("a_metric", "", func() float64 { return 1 })
	k.At(120*sim.Microsecond, func() {})
	r.StartProbes(k, 50*sim.Microsecond)
	k.Run()
	r.FinalSample(k.Now())
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_us,a_metric,b_metric" {
		t.Fatalf("header = %q (columns must be name-sorted)", lines[0])
	}
	if len(lines) != 1+r.Samples() {
		t.Fatalf("%d data lines for %d samples", len(lines)-1, r.Samples())
	}
	if !strings.HasSuffix(lines[1], ",1,2") {
		t.Fatalf("row values wrong: %q", lines[1])
	}
}

func TestJSONSummary(t *testing.T) {
	r := NewRegistry()
	r.SetPolicy("RELIEF")
	r.Counter("relief_c", "").Add(3)
	r.ObserveNodeLatency("canny", 10, 20, 30, 40, 0)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["schema"] != SchemaJSON {
		t.Fatalf("schema = %v, want %s", doc["schema"], SchemaJSON)
	}
	if doc["policy"] != "RELIEF" {
		t.Fatalf("policy = %v", doc["policy"])
	}
	attr := doc["attribution"].(map[string]any)
	apps := attr["apps"].(map[string]any)
	if _, ok := apps["canny"]; !ok {
		t.Fatalf("attribution.apps missing canny: %v", apps)
	}
	// Emitting twice must yield identical bytes (deterministic key order).
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON export is not deterministic")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("relief_nodes_total", "nodes done").Add(7)
	r.GaugeFunc("relief_q{kind=\"isp\"}", "queue", func() float64 { return 2 })
	r.GaugeFunc("relief_q{kind=\"conv\"}", "queue", func() float64 { return 3 })
	h := r.Histogram("relief_lat_us", "latency")
	h.Observe(10)
	h.Observe(20)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE relief_nodes_total counter",
		"relief_nodes_total 7",
		"# TYPE relief_q gauge",
		`relief_q{kind="isp"} 2`,
		"# TYPE relief_lat_us summary",
		`relief_lat_us{quantile="0.5"}`,
		"relief_lat_us_sum 30",
		"relief_lat_us_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The labelled family must emit its TYPE header exactly once.
	if strings.Count(out, "# TYPE relief_q gauge") != 1 {
		t.Errorf("family TYPE emitted more than once:\n%s", out)
	}
}

func TestAttributionSums(t *testing.T) {
	r := NewRegistry()
	r.ObserveNodeLatency("a", 1, 2, 3, 4, 5)
	r.ObserveNodeLatency("a", 10, 0, 0, 30, 0)
	r.ObserveNodeLatency("b", 0, 0, 50, 50, 0)
	at := r.Attribution()
	if at.Total.Nodes != 3 || at.Total.Total != 155 {
		t.Fatalf("total bucket = %+v", at.Total)
	}
	b := at.Apps["b"]
	if b.StallShare() != 50 {
		t.Fatalf("b stall share = %v, want 50", b.StallShare())
	}
	wait, pure, stall, comp, wb := at.Apps["a"].Shares()
	if sum := wait + pure + stall + comp + wb; sum < 99.9 || sum > 100.1 {
		t.Fatalf("shares sum to %v, want 100", sum)
	}
	if r.FindHistogram("relief_node_latency_us").Count() != 3 {
		t.Fatal("node latency histogram not fed")
	}
}
