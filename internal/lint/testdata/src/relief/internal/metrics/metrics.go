// weakevent fixture: observability code may only schedule weak events.
package metrics

import "relief/internal/sim"

func startProbes(k *sim.Kernel) {
	k.Schedule(10, tick)     // want `strong kernel event scheduled from observability package metrics`
	k.At(20, tick)           // want `strong kernel event scheduled from observability package metrics`
	k.ScheduleWeak(10, tick) // weak events are the contract; no diagnostic
}

func allowedSetup(k *sim.Kernel) {
	k.Schedule(0, tick) //lint:allow weakevent one-shot setup event created before the run starts
}

func inertDirective(k *sim.Kernel) {
	//lint:allow weakevent
	k.Schedule(0, tick) // want `strong kernel event scheduled from observability package metrics`
}

func tick() {}
