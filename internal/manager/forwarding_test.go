package manager

import (
	"testing"

	"relief/internal/accel"
	"relief/internal/core"
	"relief/internal/graph"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/workload"
)

// TestPartitionReclaimForcesWriteback: with a single output partition and
// a consumer that is forced to wait (FCFS interleaving with another
// chain), the producer's unconsumed result must be written back before the
// partition is overwritten, and the late consumer must read it from main
// memory — never lose data.
func TestPartitionReclaimForcesWriteback(t *testing.T) {
	cfg := DefaultConfig(sched.FCFS{})
	cfg.OutputPartitions = 1
	st := run(t, cfg,
		chainBuilder("a", 6, 80*sim.Millisecond),
		chainBuilder("b", 6, 80*sim.Millisecond))
	// Single partition + interleaving: intermediate results get evicted,
	// so a substantial share of edges must fall back to main memory, and
	// reads can never exceed what was written back plus external inputs.
	dramEdges := st.Edges - st.Forwards - st.Colocations
	if dramEdges == 0 {
		t.Fatal("expected DRAM fallback edges under single-partition interleaving")
	}
	extIn := int64(2 * 65536) // two chain roots
	if st.DRAMReadBytes > st.DRAMWriteBytes+extIn {
		t.Fatalf("read %d bytes from DRAM but only %d were written back (+%d external)",
			st.DRAMReadBytes, st.DRAMWriteBytes, extIn)
	}
}

// TestLeafAlwaysWrittenBack: final results must reach main memory under
// every policy — the user program reads them there.
func TestLeafAlwaysWrittenBack(t *testing.T) {
	for _, p := range []sched.Policy{sched.FCFS{}, core.New()} {
		k := sim.NewKernel()
		st := stats.New()
		m := New(k, DefaultConfig(p), st)
		var leafBytes int64
		for _, app := range []workload.App{workload.Canny, workload.Harris} {
			d := workload.MustBuild(app)
			for _, n := range d.Leaves() {
				leafBytes += n.OutputBytes
			}
			if err := m.Submit(d, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Run()
		if st.DRAMWriteBytes < leafBytes {
			t.Fatalf("%s: wrote %d bytes to DRAM, leaves alone need %d",
				p.Name(), st.DRAMWriteBytes, leafBytes)
		}
	}
}

// TestDispensableIntermediates: in a fully colocated chain, intermediate
// results are never written back ("intermediate results are dispensable").
func TestDispensableIntermediates(t *testing.T) {
	st := run(t, DefaultConfig(core.New()), chainBuilder("c", 10, 80*sim.Millisecond))
	if st.Colocations != 9 {
		t.Fatalf("colocations = %d, want 9", st.Colocations)
	}
	if st.DRAMWriteBytes != 65536 {
		t.Fatalf("DRAM writes = %d bytes, want leaf only (65536)", st.DRAMWriteBytes)
	}
}

// TestFanOutPartialForward: a producer with two same-kind children on one
// instance can colocate only one; the other still gets its data (forward
// from the surviving partition or DRAM), and accounting stays exact.
func TestFanOutPartialForward(t *testing.T) {
	b := func() *graph.DAG {
		d := graph.New("fan", "F", 80*sim.Millisecond)
		p := d.AddNode("p", accel.ElemMatrix, accel.OpAdd, 65536)
		p.ExtraInputBytes = 65536
		d.AddNode("c1", accel.ElemMatrix, accel.OpAdd, 65536, p)
		d.AddNode("c2", accel.ElemMatrix, accel.OpAdd, 65536, p)
		return d
	}
	st := run(t, DefaultConfig(core.New()), b)
	if st.Edges != 2 || st.NodesDone != 3 {
		t.Fatalf("edges=%d nodes=%d", st.Edges, st.NodesDone)
	}
	// Both children consumed the data somehow.
	if st.Forwards+st.Colocations+(st.Edges-st.Forwards-st.Colocations) != 2 {
		t.Fatal("edge accounting broken")
	}
	// With one EM instance the second child runs right after the first;
	// the producer's partition still holds the data (double buffering), so
	// both edges resolve locally.
	if st.Forwards+st.Colocations != 2 {
		t.Errorf("fan-out edges: fwd=%d col=%d dram=%d; double buffering should keep both local",
			st.Forwards, st.Colocations, st.Edges-st.Forwards-st.Colocations)
	}
}

// TestDiamondJoin: a join node must wait for both parents and can combine
// a colocation with a forward.
func TestDiamondJoin(t *testing.T) {
	b := func() *graph.DAG {
		d := graph.New("diamond", "D", 80*sim.Millisecond)
		src := d.AddNode("src", accel.Grayscale, accel.OpDefault, 65536)
		src.ExtraInputBytes = 65536
		l := d.AddNode("left", accel.Convolution, accel.OpDefault, 65536, src)
		l.FilterSize = 3
		r := d.AddNode("right", accel.ElemMatrix, accel.OpSqr, 65536, src)
		d.AddNode("join", accel.ElemMatrix, accel.OpAdd, 65536, l, r)
		return d
	}
	st := run(t, DefaultConfig(core.New()), b)
	if st.NodesDone != 4 || st.Edges != 4 {
		t.Fatalf("nodes=%d edges=%d", st.NodesDone, st.Edges)
	}
	if st.Forwards+st.Colocations < 3 {
		t.Errorf("diamond resolved only %d of 4 edges locally", st.Forwards+st.Colocations)
	}
}

// TestStaggeredRelease: a DAG released later must not start earlier, and
// deadlines are relative to its own release.
func TestStaggeredRelease(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	early := workload.MustBuild(workload.Canny)
	late := workload.MustBuild(workload.Harris)
	if err := m.Submit(early, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(late, 5*sim.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if late.Release != 5*sim.Millisecond {
		t.Fatalf("late release = %v", late.Release)
	}
	for _, n := range late.Nodes {
		if n.StartAt < 5*sim.Millisecond {
			t.Fatalf("node %s started at %v, before its DAG's release", n.Name, n.StartAt)
		}
		if n.Deadline != late.Release+n.RelDeadline {
			t.Fatalf("node %s deadline not rebased on release", n.Name)
		}
	}
}

// TestInstanceComputeBusyConservation: summed compute busy time equals the
// jittered compute of all executed nodes.
func TestInstanceComputeBusyConservation(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	m := New(k, DefaultConfig(core.New()), st)
	d := workload.MustBuild(workload.GRU)
	if err := m.Submit(d, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Run()
	var want sim.Time
	for _, n := range d.Nodes {
		want += m.jitteredCompute(n)
	}
	if st.ComputeBusy != want {
		t.Fatalf("ComputeBusy = %v, want %v", st.ComputeBusy, want)
	}
}

// TestBusyInstanceNeverDoubleLaunched: no instance may run two nodes at
// once; validated via compute-span overlap per lane in a traced run.
func TestBusyInstanceNeverDoubleLaunched(t *testing.T) {
	k := sim.NewKernel()
	st := stats.New()
	cfg := DefaultConfig(core.New())
	rec := traceRecorder()
	cfg.Trace = rec
	m := New(k, cfg, st)
	for _, app := range []workload.App{workload.Canny, workload.Deblur, workload.Harris} {
		if err := m.Submit(workload.MustBuild(app), 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Run()
	type span struct{ s, e sim.Time }
	lanes := map[string][]span{}
	for _, e := range rec.Events() {
		if e.Kind.String() != "compute" {
			continue
		}
		lanes[e.Lane] = append(lanes[e.Lane], span{e.Start, e.End})
	}
	for lane, spans := range lanes {
		for i := 1; i < len(spans); i++ {
			if spans[i].s < spans[i-1].e {
				t.Fatalf("lane %s: overlapping compute spans %v < %v", lane, spans[i].s, spans[i-1].e)
			}
		}
	}
}

func traceRecorder() *trace.Recorder { return trace.NewRecorder() }
