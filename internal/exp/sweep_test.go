package exp

import (
	"errors"
	"testing"

	"relief/internal/predict"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// TestSweepKeyDistinguishesScenarios: every field of Scenario that selects
// a distinct simulation must produce a distinct cache key.
func TestSweepKeyDistinguishesScenarios(t *testing.T) {
	mixCGL, _ := workload.ParseMix("CGL")
	mixCG, _ := workload.ParseMix("CG")
	base := Scenario{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF"}
	variants := []Scenario{
		{Mix: mixCG, Contention: workload.High, Policy: "RELIEF"},
		{Mix: mixCGL, Contention: workload.Low, Policy: "RELIEF"},
		{Mix: mixCGL, Contention: workload.High, Policy: "FCFS"},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", Topology: xbar.Crossbar},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", BWPredictor: "ewma"},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", DM: predict.DMPredict},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", DisableForwarding: true},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", AlwaysWriteBack: true},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", OutputPartitions: 3},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", DetailedDRAM: true},
		{Mix: mixCGL, Contention: workload.High, Policy: "RELIEF", DetailedDRAM: true, DRAMFCFS: true},
	}
	s := NewSweep()
	seen := map[string]int{s.key(base): -1}
	for i, sc := range variants {
		k := s.key(sc)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: key %q", i, prev, k)
		}
		seen[k] = i
	}
}

// TestSweepKeyFieldsCannotBleed: adjacent fields are delimiter-separated,
// so content cannot shift between fields and collide.
func TestSweepKeyFieldsCannotBleed(t *testing.T) {
	s := NewSweep()
	a := Scenario{Policy: "RELIEF", BWPredictor: ""}
	b := Scenario{Policy: "RELIEF", BWPredictor: "x"}
	if s.key(a) == s.key(b) {
		t.Fatal("distinct predictors share a key")
	}
}

func TestSweepErrSurfacesWarmFailure(t *testing.T) {
	s := NewSweep()
	bad := []Scenario{{Policy: "no-such-policy"}}
	s.Warm(bad, 2)
	if err := s.Err(); err == nil {
		t.Fatal("Warm swallowed the simulation error; Err() = nil")
	}
	// The error must describe the unknown policy.
	if err := s.Err(); err != nil && !errors.Is(err, err) {
		t.Fatalf("unexpected error identity: %v", err)
	}
}

func BenchmarkSweepKey(b *testing.B) {
	mix, _ := workload.ParseMix("CDGHL")
	sc := Scenario{
		Mix: mix, Contention: workload.Continuous, Policy: "RELIEF-LAX",
		BWPredictor: "ewma", OutputPartitions: 2, DetailedDRAM: true,
	}
	s := NewSweep()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.key(sc)) == 0 {
			b.Fatal("empty key")
		}
	}
}
