// Package trace records simulation events — task phases, DMA transfers,
// scheduling decisions — and exports them as human-readable timelines or
// as Chrome trace-event JSON (load chrome://tracing or Perfetto to view).
//
// The recorder is optional: the manager runs with a nil *Recorder and pays
// nothing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"relief/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	TaskCompute Kind = iota // accelerator busy computing a node
	TaskInput               // DMA-in phase (all input transfers)
	Writeback               // output DMA to main memory
	Forward                 // SPAD-to-SPAD transfer
	Schedule                // manager scheduling work (ISR)
	Release                 // DAG released
	Deadline                // instantaneous deadline marker
	Fault                   // injected fault materialised (hang, death, corruption)
	Watchdog                // watchdog expiry that triggered recovery
	Retry                   // task re-dispatch backoff window
	Abort                   // DAG cancelled by the recovery machinery
	Service                 // serving-layer pipeline stage (wall clock, svctrace)
)

var kindNames = [...]string{
	TaskCompute: "compute",
	TaskInput:   "input-dma",
	Writeback:   "writeback",
	Forward:     "forward",
	Schedule:    "schedule",
	Release:     "release",
	Deadline:    "deadline",
	Fault:       "fault",
	Watchdog:    "watchdog",
	Retry:       "retry",
	Abort:       "abort",
	Service:     "service",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKinds parses a comma-separated list of kind names ("compute,
// writeback") into kinds. Names match the String() forms; whitespace
// around entries is ignored.
func ParseKinds(csv string) ([]Kind, error) {
	var out []Kind
	for _, part := range strings.Split(csv, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		found := false
		for k, kn := range kindNames {
			if kn == name {
				out = append(out, Kind(k))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: unknown event kind %q (known: %s)",
				name, strings.Join(kindNames[:], ", "))
		}
	}
	return out, nil
}

// Filter returns the subset of events whose kind is in kinds (all events
// when kinds is empty).
func Filter(events []Event, kinds ...Kind) []Event {
	if len(kinds) == 0 {
		return events
	}
	var out []Event
	for _, e := range events {
		for _, k := range kinds {
			if e.Kind == k {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// Event is one recorded interval (or instant, when End == Start).
type Event struct {
	Kind  Kind
	Name  string // node or DAG label
	Lane  string // display row: accelerator instance, "manager", "dram"...
	Start sim.Time
	End   sim.Time
	// Meta carries small key/value details (edge classification, bytes).
	Meta map[string]string
}

// Recorder accumulates events. The zero value is ready to use.
type Recorder struct {
	events []Event
	// open holds the in-flight interval indices per (lane,name,kind),
	// newest last, so same-identity intervals may overlap: End closes the
	// most recent open Begin (LIFO).
	open map[openKey][]int
	// cap bounds len(events); once reached, further events are counted in
	// dropped instead of stored (0 = unbounded).
	cap     int
	dropped uint64
}

type openKey struct {
	kind Kind
	name string
	lane string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[openKey][]int)}
}

// SetMaxEvents bounds the recorder to n stored events (0 = unbounded).
// Events recorded past the cap are not stored; their count is reported by
// Dropped and flagged at export, so million-iteration runs can trace
// without unbounded memory growth. Begin/End pairing degrades after the
// cap (a dropped Begin's End may close an older same-identity interval);
// the dropped counter signals that the tail is incomplete.
func (r *Recorder) SetMaxEvents(n int) {
	if r == nil {
		return
	}
	r.cap = n
}

// Dropped reports the number of events discarded by the SetMaxEvents cap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// full reports (and counts) a drop when the event cap is reached.
func (r *Recorder) full() bool {
	if r.cap > 0 && len(r.events) >= r.cap {
		r.dropped++
		return true
	}
	return false
}

// Enabled reports whether events are being recorded. Every method is a
// no-op on a nil receiver, but callers should still gate recording calls
// whose arguments are themselves costly to build (formatted labels) so a
// traceless run pays nothing on the hot path.
func (r *Recorder) Enabled() bool { return r != nil }

// Instant records a zero-length event.
func (r *Recorder) Instant(kind Kind, name, lane string, at sim.Time, meta map[string]string) {
	if r == nil || r.full() {
		return
	}
	r.events = append(r.events, Event{Kind: kind, Name: name, Lane: lane, Start: at, End: at, Meta: meta})
}

// Begin opens an interval; End closes it. Same-identity intervals may
// overlap: each Begin pushes onto a per-identity stack and End pops the
// most recent. Unmatched Begins are closed at export time with their start
// timestamp.
func (r *Recorder) Begin(kind Kind, name, lane string, at sim.Time, meta map[string]string) {
	if r == nil || r.full() {
		return
	}
	r.events = append(r.events, Event{Kind: kind, Name: name, Lane: lane, Start: at, End: -1, Meta: meta})
	if r.open == nil {
		r.open = make(map[openKey][]int)
	}
	k := openKey{kind, name, lane}
	r.open[k] = append(r.open[k], len(r.events)-1)
}

// End closes the most recent open interval with the same identity.
func (r *Recorder) End(kind Kind, name, lane string, at sim.Time) {
	if r == nil {
		return
	}
	k := openKey{kind, name, lane}
	st := r.open[k]
	if n := len(st); n > 0 {
		r.events[st[n-1]].End = at
		if n == 1 {
			delete(r.open, k)
		} else {
			r.open[k] = st[:n-1]
		}
	}
}

// Span records a complete interval in one call.
func (r *Recorder) Span(kind Kind, name, lane string, start, end sim.Time, meta map[string]string) {
	if r == nil || r.full() {
		return
	}
	r.events = append(r.events, Event{Kind: kind, Name: name, Lane: lane, Start: start, End: end, Meta: meta})
}

// Events returns the recorded events sorted by start time, closing any
// dangling intervals.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, len(r.events))
	copy(out, r.events)
	for i := range out {
		if out[i].End < out[i].Start {
			out[i].End = out[i].Start
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// WriteText renders a fixed-width timeline, one line per event, with a
// trailer noting events lost to the SetMaxEvents cap.
func (r *Recorder) WriteText(w io.Writer) error {
	if err := WriteTextEvents(w, r.Events()); err != nil {
		return err
	}
	if d := r.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d events dropped (cap %d)\n", d, r.cap); err != nil {
			return err
		}
	}
	return nil
}

// WriteTextEvents renders an event slice (e.g. a Filter result) as the
// fixed-width timeline format of Recorder.WriteText.
func WriteTextEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		var err error
		if e.Start == e.End {
			_, err = fmt.Fprintf(w, "%12v  %-10s %-22s %s\n", e.Start, e.Kind, e.Lane, e.Name)
		} else {
			_, err = fmt.Fprintf(w, "%12v  %-10s %-22s %-24s dur=%v\n", e.Start, e.Kind, e.Lane, e.Name, e.End-e.Start)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is the Chrome trace-event JSON schema (subset).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace emits the events as a Chrome/Perfetto trace-event JSON
// array, one thread row per lane. Events lost to the SetMaxEvents cap are
// reported in a trailing metadata record.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return writeChrome(w, r.Events(), r.Dropped())
}

// WriteChromeEvents emits an event slice (e.g. a Filter result) in the
// Chrome trace-event JSON format of Recorder.WriteChromeTrace.
func WriteChromeEvents(w io.Writer, events []Event) error {
	return writeChrome(w, events, 0)
}

func writeChrome(w io.Writer, events []Event, dropped uint64) error {
	lanes := map[string]int{}
	var laneNames []string
	for _, e := range events {
		if _, ok := lanes[e.Lane]; !ok {
			lanes[e.Lane] = len(lanes) + 1
			laneNames = append(laneNames, e.Lane)
		}
	}
	var out []any
	for _, name := range laneNames {
		out = append(out, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 1, TID: lanes[name],
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Kind.String(),
			Ph:   "X",
			Ts:   e.Start.Microseconds(),
			Dur:  (e.End - e.Start).Microseconds(),
			PID:  1,
			TID:  lanes[e.Lane],
			Args: e.Meta,
		}
		if e.Start == e.End {
			ce.Ph = "i"
			ce.Dur = 0
		}
		out = append(out, ce)
	}
	if dropped > 0 {
		out = append(out, chromeMeta{
			Name: "trace_dropped_events", Ph: "M", PID: 1, TID: 0,
			Args: map[string]any{"count": dropped},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
