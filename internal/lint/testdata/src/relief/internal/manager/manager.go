// maporder fixture: no order-sensitive work inside range over a map.
package manager

import (
	"crypto/sha256"
	"sort"

	"relief/internal/sim"
)

func schedulesInLoop(k *sim.Kernel, m map[string]int) {
	for range m {
		k.Schedule(1, noop) // want `event scheduled inside range over map`
	}
}

func weakInLoop(k *sim.Kernel, m map[string]int) {
	for range m {
		k.ScheduleWeak(1, noop) // want `event scheduled inside range over map`
	}
}

func appendsUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to outer slice inside range over map`
	}
	return out
}

// appendsThenSorts is the canonical collect-keys-then-sort idiom; the later
// sort makes the order deterministic, so no diagnostic.
func appendsThenSorts(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func floatAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside range over map`
	}
	return sum
}

// integer accumulation is associative and order-insensitive; no diagnostic.
func intAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func feedsDigest(m map[string]int) []byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `hash/digest fed inside range over map`
	}
	return h.Sum(nil)
}

// insertion into another map is order-insensitive; no diagnostic.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func allowedAccumulation(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow maporder values are exact powers of two; addition is associative here
	}
	return sum
}

func noop() {}
