// relief-design reproduces the paper's accelerator design-space
// exploration (§IV-B): for each of the seven accelerators it sweeps
// functional units x scratchpad ports, reports the minimum-ED^2 design,
// and compares the resulting task latency with the calibrated compute time
// the simulator uses.
//
// Usage:
//
//	relief-design              # chosen design per accelerator
//	relief-design -sweep conv  # full sweep table for one accelerator
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relief/internal/accel"
	"relief/internal/design"
)

func main() {
	sweepFor := flag.String("sweep", "", "print the full FU x port sweep for one accelerator (name prefix)")
	flag.Parse()

	sp := design.DefaultSpace()
	if *sweepFor != "" {
		for _, k := range design.Kernels() {
			if !strings.HasPrefix(k.Kind.String(), *sweepFor) {
				continue
			}
			fmt.Printf("ED^2 sweep for %s (work %.0f ops, mem %.0f accesses per task):\n",
				k.Kind, k.WorkOps, k.MemOps)
			pts, best := design.Sweep(k, sp)
			fmt.Printf("%4s %6s %12s %12s %14s\n", "FUs", "ports", "latency", "energy(uJ)", "ED2(fJ*s^2)")
			for i, p := range pts {
				mark := " "
				if i == best {
					mark = "*"
				}
				fmt.Printf("%4d %6d %12v %12.3f %14.4g %s\n",
					p.Config.FUs, p.Config.Ports, p.Latency, p.EnergyJ*1e6, p.ED2*1e15, mark)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "relief-design: no accelerator matching %q\n", *sweepFor)
		os.Exit(2)
	}

	fmt.Println("Minimum-ED^2 designs (paper §IV-B methodology):")
	fmt.Printf("%-15s %5s %6s %12s %12s %14s %10s\n",
		"accelerator", "FUs", "ports", "latency", "calibrated", "energy(uJ)", "lat/cal")
	for _, k := range design.Kernels() {
		p := design.Choose(k, sp)
		cal := accel.ComputeTime(k.Kind, accel.OpDefault, 128*128, 5)
		fmt.Printf("%-15s %5d %6d %12v %12v %12.3f %10.2f\n",
			k.Kind, p.Config.FUs, p.Config.Ports, p.Latency, cal,
			p.EnergyJ*1e6, float64(p.Latency)/float64(cal))
	}
}
