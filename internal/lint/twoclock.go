package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// SimClockFact marks a named type as carrying simulated time: sim.Time
// itself, or any type declared (possibly transitively) from it, e.g.
//
//	type Stamp sim.Time
//
// Exported for every such type so the two-clock check follows derived
// timestamp types across package boundaries.
type SimClockFact struct{}

func (*SimClockFact) AFact() {}

func (*SimClockFact) String() string { return "simClock" }

// TwoClock flags value-level mixing of the simulator's clock (sim.Time,
// picoseconds since run start) with the wall clock (time.Time and
// time.Duration): conversions from one clock's types to the other's —
// including through intermediate numeric conversions like
// sim.Time(int64(d)) — and binary expressions with one operand on each
// clock. The two clocks advance independently; a value laundered across
// the boundary is a determinism bug (wall time leaking into the
// simulation) or a unit bug (picoseconds read as nanoseconds). Deliberate
// boundary crossings (e.g. formatting sim time for humans) carry a
// //lint:allow twoclock directive with a reason.
var TwoClock = &analysis.Analyzer{
	Name: "twoclock",
	Doc: "forbid conversions and arithmetic mixing simulated time (sim.Time " +
		"and types derived from it) with wall-clock time.Time/time.Duration",
	FactTypes: []analysis.Fact{&SimClockFact{}},
	Run:       runTwoClock,
}

type twoClockChecker struct {
	pass  *analysis.Pass
	local map[*types.TypeName]bool // in-package types derived from sim.Time
}

func runTwoClock(pass *analysis.Pass) error {
	c := &twoClockChecker{pass: pass, local: make(map[*types.TypeName]bool)}
	c.collectDerived()
	for tn := range c.local {
		pass.ExportObjectFact(tn, &SimClockFact{})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				c.checkConversion(e)
			case *ast.BinaryExpr:
				c.checkBinary(e)
			}
			return true
		})
	}
	return nil
}

// collectDerived finds package-level `type X Y` declarations whose right-
// hand side is a sim-clock type, iterating to a fixpoint so chains
// (type A sim.Time; type B A) resolve regardless of declaration order.
// Aliases need no entry: type identity already resolves them.
func (c *twoClockChecker) collectDerived() {
	for {
		changed := false
		for _, file := range c.pass.Files {
			for _, d := range file.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Assign.IsValid() {
						continue
					}
					tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
					if !ok || c.local[tn] {
						continue
					}
					rhs, ok := c.pass.TypesInfo.Types[ts.Type]
					if !ok || rhs.Type == nil {
						continue
					}
					if c.isSimClock(rhs.Type) {
						c.local[tn] = true
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// isSimClock reports whether t is a simulated-time type: sim.Time itself,
// a local derived type, or a type with an imported SimClock fact.
func (c *twoClockChecker) isSimClock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() != nil && strings.HasSuffix(tn.Pkg().Path(), "internal/sim") && tn.Name() == "Time" {
		return true
	}
	if c.local[tn] {
		return true
	}
	if c.pass.Facts != nil {
		var fact SimClockFact
		if c.pass.Facts.ImportObjectFact(tn, &fact) {
			return true
		}
	}
	return false
}

// isWallClock reports whether t is time.Time or time.Duration.
func isWallClock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != "time" {
		return false
	}
	return tn.Name() == "Time" || tn.Name() == "Duration"
}

// clockOf classifies a type: "simulated" / "wall-clock" / "" (neither).
func (c *twoClockChecker) clockOf(t types.Type) string {
	switch {
	case c.isSimClock(t):
		return "simulated"
	case isWallClock(t):
		return "wall-clock"
	}
	return ""
}

// operandClock classifies the expression feeding a conversion, looking
// through intermediate plain-numeric conversions so that laundering like
// sim.Time(int64(d)) is still caught.
func (c *twoClockChecker) operandClock(expr ast.Expr) (string, types.Type) {
	for {
		expr = ast.Unparen(expr)
		tv, ok := c.pass.TypesInfo.Types[expr]
		if !ok || tv.Type == nil {
			return "", nil
		}
		if clock := c.clockOf(tv.Type); clock != "" {
			return clock, tv.Type
		}
		// Look through a nested conversion: int64(x), uint64(x), ...
		call, ok := expr.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return "", nil
		}
		if ftv, ok := c.pass.TypesInfo.Types[call.Fun]; !ok || !ftv.IsType() {
			return "", nil
		}
		expr = call.Args[0]
	}
}

func (c *twoClockChecker) checkConversion(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dstClock := c.clockOf(tv.Type)
	if dstClock == "" {
		return
	}
	srcClock, srcType := c.operandClock(call.Args[0])
	if srcClock == "" || srcClock == dstClock {
		return
	}
	c.pass.Reportf(call.Pos(), "conversion of %s %s to %s %s mixes the two clocks",
		srcClock, typeName(c.pass.Pkg, srcType), dstClock, typeName(c.pass.Pkg, tv.Type))
}

func (c *twoClockChecker) checkBinary(e *ast.BinaryExpr) {
	xt, ok := c.pass.TypesInfo.Types[e.X]
	if !ok || xt.Type == nil {
		return
	}
	yt, ok := c.pass.TypesInfo.Types[e.Y]
	if !ok || yt.Type == nil {
		return
	}
	xc, yc := c.clockOf(xt.Type), c.clockOf(yt.Type)
	if xc == "" || yc == "" || xc == yc {
		return
	}
	c.pass.Reportf(e.OpPos, "operands mix %s %s and %s %s",
		xc, typeName(c.pass.Pkg, xt.Type), yc, typeName(c.pass.Pkg, yt.Type))
}

// typeName renders a type for diagnostics, package-qualified unless it is
// declared in the package under analysis.
func typeName(current *types.Package, t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string {
		if p == current {
			return ""
		}
		return p.Name()
	})
}
