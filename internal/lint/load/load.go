// Package load turns `go list` package patterns into parsed, type-checked
// packages for relief-lint, using only the standard library.
//
// Strategy: one `go list -deps -export -json` invocation yields, for every
// package in the transitive closure, its directory, source files, and a
// compiled export-data file from the build cache. The target packages are
// then parsed from source and type-checked against the export data of
// their dependencies via go/importer's gc importer with a lookup function
// — the same scheme `go vet` uses, so diagnostics carry exact types
// without re-type-checking the world from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked lint target or module dependency.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// Target marks a package named by the load patterns (findings are
	// reported for targets); false for module dependencies loaded only so
	// fact-producing analyzers can run over them bottom-up.
	Target bool

	// Imports lists the package's direct imports, so a facts driver can
	// feed each package exactly its dependencies' fact streams.
	Imports []string
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Error      *struct{ Err string }
}

// Packages lists, parses, and type-checks the packages matching patterns
// (relative to dir; empty dir means the current directory), plus every
// in-module dependency of theirs, so fact-producing analyzers can run
// bottom-up over the whole module slice. Packages come back in dependency
// order (`go list -deps` post-order: a package after everything it
// imports) with Target set on the pattern-named ones. Standard-library
// dependencies are resolved through build-cache export data only, so the
// module must build.
func Packages(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(entries))
	var module []*listEntry
	for _, e := range entries {
		if e.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.Standard {
			module = append(module, e)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, e := range module {
		if len(e.CgoFiles) > 0 {
			// cgo files need preprocessing the loader does not do; the
			// repo has none, so refuse loudly rather than lint half a
			// package.
			return nil, nil, fmt.Errorf("load: %s: cgo packages are not supported", e.ImportPath)
		}
		pkg, err := check(fset, imp, e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		pkg.Target = !e.DepOnly
		pkg.Imports = e.Imports
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the JSON stream.
func goList(dir string, patterns ...string) ([]*listEntry, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list failed: %v\n%s", err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// ExportMap returns import path -> export-data file for the transitive
// closure of patterns. The analysistest harness uses it to resolve the
// standard-library imports of fixture packages.
func ExportMap(dir string, patterns ...string) (map[string]string, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// ExportImporter returns a types importer that resolves import paths
// through the given export-data file map (as produced by `go list
// -export`). "unsafe" is handled by the underlying gc importer.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// ParseDir parses every listed file in dir with comments retained.
func ParseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks already-parsed files as package path, resolving
// imports through imp. It is shared by the CLI loader, the vettool mode,
// and the analysistest harness.
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

func check(fset *token.FileSet, imp types.Importer, path, dir string, names []string) (*Package, error) {
	files, err := ParseDir(fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, info, err := Check(fset, imp, path, files)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: path, Dir: dir, Files: files, Types: pkg, TypesInfo: info}, nil
}
