package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a typed, serializable observation an analyzer exports about an
// object (a function, type, or struct field) so that analyses of packages
// that import the object can consume it — the go/analysis Facts model.
// Concrete fact types are pointers to structs, must be gob-encodable, and
// must be listed in their analyzer's FactTypes so the engine can register
// them with gob before any package is analyzed.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// objectPath encodes an object as a package-relative path the facts engine
// can resolve identically from either side of an export-data boundary:
//
//	F           package-level func, var, or type name
//	T.M         method M of named type T (pointer or value receiver)
//	T.F         field F of struct type T
//
// Objects that have no such path (locals, fields of anonymous structs,
// interface methods obtained via embedding, ...) report ok=false; facts
// about them cannot cross package boundaries, which is fine — importers
// can only name path-addressable objects anyway.
func objectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			rt := recv.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		if o.Pkg().Scope().Lookup(o.Name()) != obj {
			return "", false
		}
		return o.Name(), true
	case *types.TypeName, *types.Const:
		if o.Pkg().Scope().Lookup(o.Name()) != obj {
			return "", false
		}
		return o.Name(), true
	case *types.Var:
		if !o.IsField() {
			if o.Pkg().Scope().Lookup(o.Name()) != obj {
				return "", false
			}
			return o.Name(), true
		}
		// A field's owner is found by scanning the package scope for the
		// named struct type that declares this exact object.
		scope := o.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == obj {
					return tn.Name() + "." + o.Name(), true
				}
			}
		}
		return "", false
	}
	return "", false
}

// factKey identifies one stored fact: the object's package and path plus
// the concrete fact type (one object may carry facts of several types).
type factKey struct {
	pkg string // package import path
	obj string // objectPath within the package
	typ string // concrete fact type name
}

// FactSet is the engine's store for one package's analysis: the facts
// imported from dependencies plus the facts the current pass exports. The
// zero value is not usable; call NewFactSet.
type FactSet struct {
	m map[factKey]Fact
}

// NewFactSet returns an empty fact store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey]Fact)}
}

func factTypeName(fact Fact) string {
	t := reflect.TypeOf(fact)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.String()
}

// ExportObjectFact associates fact with obj. The object must belong to the
// package under analysis (enforced by the Pass wrapper); objects without a
// stable path are silently skipped, mirroring the upstream contract that
// facts on unexported locals simply do not propagate.
func (s *FactSet) ExportObjectFact(obj types.Object, fact Fact) {
	if s == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	path, ok := objectPath(obj)
	if !ok {
		return
	}
	s.m[factKey{obj.Pkg().Path(), path, factTypeName(fact)}] = fact
}

// ImportObjectFact copies the stored fact about obj (from this package or
// any analyzed dependency) into *fact and reports whether one was found.
// fact must be a pointer of the same concrete type the producer exported.
func (s *FactSet) ImportObjectFact(obj types.Object, fact Fact) bool {
	if s == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := objectPath(obj)
	if !ok {
		return false
	}
	stored, ok := s.m[factKey{obj.Pkg().Path(), path, factTypeName(fact)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact)
	sv := reflect.ValueOf(stored)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// wireFact is the gob wire form of one fact. Obj is the objectPath within
// PkgPath; Fact is the concrete registered type.
type wireFact struct {
	PkgPath string
	Obj     string
	Fact    Fact
}

// Encode serializes every fact in the set — the package's own and those
// inherited from its dependencies — so that a dependent package needs only
// its direct imports' fact files to see the whole transitive closure (the
// same re-export scheme x/tools' facts package uses). The stream is sorted
// for deterministic bytes.
func (s *FactSet) Encode() ([]byte, error) {
	if s == nil || len(s.m) == 0 {
		return nil, nil
	}
	wire := make([]wireFact, 0, len(s.m))
	for k, f := range s.m {
		wire = append(wire, wireFact{PkgPath: k.pkg, Obj: k.obj, Fact: f})
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return factTypeName(a.Fact) < factTypeName(b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a fact stream produced by Encode into the set. Empty input
// (a dependency that exported nothing, or a driver that wrote a bare
// placeholder file) is valid and a no-op.
func (s *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("analysis: decoding facts: %v", err)
	}
	for _, w := range wire {
		if w.Fact == nil {
			continue
		}
		s.m[factKey{w.PkgPath, w.Obj, factTypeName(w.Fact)}] = w.Fact
	}
	return nil
}

// RegisterFactTypes registers every fact prototype declared by the given
// analyzers with gob, so Encode/Decode can carry them through the Fact
// interface. Safe to call repeatedly (duplicate registration of the same
// type is idempotent for identical concrete types).
func RegisterFactTypes(analyzers []*Analyzer) {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			name := factTypeName(f)
			if seen[name] {
				continue
			}
			seen[name] = true
			gob.Register(f)
		}
	}
}

// DebugString renders the set's contents for tests ("pkg.obj: fact", one
// per line, sorted), so fixtures can assert fact propagation directly.
func (s *FactSet) DebugString() string {
	if s == nil {
		return ""
	}
	lines := make([]string, 0, len(s.m))
	for k, f := range s.m {
		lines = append(lines, fmt.Sprintf("%s.%s: %s=%+v", k.pkg, k.obj, k.typ, f))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
