// twoclock fixture: conversions and arithmetic mixing simulated time
// (sim.Time and derived types, including fact-imported ones) with
// wall-clock time.Time/time.Duration are flagged; same-clock and plain
// numeric conversions are not.
package mixer

import (
	"time"

	"relief/internal/sim"
	"relief/internal/stamp"
)

// tick is the in-package derived case: no fact import needed.
type tick sim.Time

func conversions(d time.Duration, t sim.Time, e stamp.Epoch) {
	_ = sim.Time(d)        // want `conversion of wall-clock time\.Duration to simulated sim\.Time mixes the two clocks`
	_ = sim.Time(int64(d)) // want `conversion of wall-clock time\.Duration to simulated sim\.Time mixes the two clocks`
	_ = time.Duration(t)   // want `conversion of simulated sim\.Time to wall-clock time\.Duration mixes the two clocks`
	_ = stamp.Stamp(d)     // want `conversion of wall-clock time\.Duration to simulated stamp\.Stamp mixes the two clocks`
	_ = time.Duration(e)   // want `conversion of simulated stamp\.Epoch to wall-clock time\.Duration mixes the two clocks`
	_ = tick(d)            // want `conversion of wall-clock time\.Duration to simulated tick mixes the two clocks`

	_ = sim.Time(t)    // same clock: fine
	_ = stamp.Stamp(t) // sim to derived sim: fine
	_ = tick(e)        // derived to derived: fine
	_ = int64(d)       // leaving the wall clock for plain numerics: fine
	_ = sim.Time(int64(42))
}

func arithmetic(d time.Duration, t sim.Time) {
	_ = t << d // want `operands mix simulated sim\.Time and wall-clock time\.Duration`
	_ = t + t  // same clock: fine
	_ = d + d  // same clock: fine
}

func allowed(d time.Duration) sim.Time {
	return sim.Time(d) //lint:allow twoclock boundary adapter converting configured wall budgets into sim picoseconds
}
