package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"relief/internal/sim"
)

func TestSlowdown(t *testing.T) {
	a := &AppStats{Deadline: 10 * sim.Millisecond}
	if !math.IsInf(a.Slowdown(), 1) {
		t.Fatal("no finished iterations must report infinite slowdown (starvation)")
	}
	a.Runtimes = []sim.Time{5 * sim.Millisecond}
	if got := a.Slowdown(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Slowdown = %v, want 0.5", got)
	}
	// Geometric mean over iterations: 0.5 and 2.0 -> 1.0.
	a.Runtimes = append(a.Runtimes, 20*sim.Millisecond)
	if got := a.Slowdown(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("geomean slowdown = %v, want 1.0", got)
	}
}

func TestRecordEdgeAndRates(t *testing.T) {
	s := New()
	a := s.App("canny", "C", 16*sim.Millisecond)
	s.RecordEdge(a, EdgeDRAM)
	s.RecordEdge(a, EdgeForward)
	s.RecordEdge(a, EdgeForward)
	s.RecordEdge(a, EdgeColocation)
	if s.Edges != 4 || s.Forwards != 2 || s.Colocations != 1 {
		t.Fatalf("edge counts wrong: %d/%d/%d", s.Edges, s.Forwards, s.Colocations)
	}
	fwd, col := s.ForwardsPerEdge()
	if fwd != 50 || col != 25 {
		t.Fatalf("ForwardsPerEdge = (%v, %v), want (50, 25)", fwd, col)
	}
	if a.Edges != 4 || a.Forwards != 2 {
		t.Fatal("per-app edge attribution wrong")
	}
	// Same app handle on second lookup.
	if s.App("canny", "C", 16*sim.Millisecond) != a {
		t.Fatal("App must be idempotent")
	}
}

func TestForwardsPerEdgeEmpty(t *testing.T) {
	s := New()
	if f, c := s.ForwardsPerEdge(); f != 0 || c != 0 {
		t.Fatal("empty stats must report zero rates")
	}
	if d, sp := s.DataMovement(); d != 0 || sp != 0 {
		t.Fatal("empty stats must report zero movement")
	}
	if s.NodeDeadlinePct() != 0 || s.DAGDeadlinePct() != 0 || s.Occupancy() != 0 {
		t.Fatal("empty stats must report zeros")
	}
}

func TestDataMovementAndEnergy(t *testing.T) {
	s := New()
	s.BaselineBytes = 1000
	s.DRAMReadBytes = 300
	s.DRAMWriteBytes = 200
	s.SpadXferBytes = 100
	s.SpadDMABytes = 700
	dram, spad := s.DataMovement()
	if dram != 50 || spad != 10 {
		t.Fatalf("DataMovement = (%v, %v), want (50, 10)", dram, spad)
	}
	de, se := s.MemoryEnergy()
	if math.Abs(de-500*EnergyDRAMPerByte) > 1e-18 || math.Abs(se-700*EnergySPADPerByte) > 1e-18 {
		t.Fatalf("MemoryEnergy = (%v, %v)", de, se)
	}
}

func TestOccupancy(t *testing.T) {
	s := New()
	s.ComputeBusy = 14 * sim.Millisecond
	s.Makespan = 10 * sim.Millisecond
	if got := s.Occupancy(); math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("Occupancy = %v, want 1.4 (accelerator-level parallelism)", got)
	}
}

func TestDeadlinePcts(t *testing.T) {
	s := New()
	s.NodesDone = 8
	s.NodesMetDeadline = 6
	if s.NodeDeadlinePct() != 75 {
		t.Fatalf("NodeDeadlinePct = %v, want 75", s.NodeDeadlinePct())
	}
	a := s.App("gru", "G", 7*sim.Millisecond)
	a.Iterations = 4
	a.DeadlinesMet = 1
	b := s.App("lstm", "L", 7*sim.Millisecond)
	b.Iterations = 4
	b.DeadlinesMet = 3
	if s.DAGDeadlinePct() != 50 {
		t.Fatalf("DAGDeadlinePct = %v, want 50", s.DAGDeadlinePct())
	}
}

func TestSchedLatency(t *testing.T) {
	s := New()
	if avg, tail := s.SchedLatency(); avg != 0 || tail != 0 {
		t.Fatal("empty latency must be zero")
	}
	s.SchedCosts = []sim.Time{100, 200, 600}
	avg, tail := s.SchedLatency()
	if avg != 300 || tail != 600 {
		t.Fatalf("SchedLatency = (%v, %v), want (300, 600)", avg, tail)
	}
}

func TestSlowdownSpread(t *testing.T) {
	s := New()
	for i, rt := range []sim.Time{5, 10, 20} {
		a := s.App(string(rune('a'+i)), "X", 10)
		a.Runtimes = []sim.Time{rt}
	}
	min, med, max, variance := s.SlowdownSpread()
	if min != 0.5 || med != 1.0 || max != 2.0 {
		t.Fatalf("spread = (%v, %v, %v)", min, med, max)
	}
	if variance <= 0 {
		t.Fatal("variance must be positive for distinct slowdowns")
	}
}

func TestSlowdownSpreadStarvation(t *testing.T) {
	s := New()
	a := s.App("a", "A", 10)
	a.Runtimes = []sim.Time{10}
	s.App("b", "B", 10) // starved: no runtimes
	min, _, max, variance := s.SlowdownSpread()
	if min != 1.0 || !math.IsInf(max, 1) {
		t.Fatalf("spread with starvation = (%v, %v)", min, max)
	}
	if math.IsInf(variance, 1) || math.IsNaN(variance) {
		t.Fatal("variance must exclude infinite slowdowns")
	}
}

// TestStarvedAppAggregation is the regression test for the +Inf-slowdown
// bug: a zero-iteration (starved) application must be flagged explicitly
// and must not poison scenario-level aggregates — the cross-app geomean
// stays finite, the gem5 export never prints "%f" of +Inf, and a JSON
// document over the per-app slowdowns still marshals.
func TestStarvedAppAggregation(t *testing.T) {
	s := New()
	a := s.App("canny", "C", 10*sim.Millisecond)
	a.Runtimes = []sim.Time{20 * sim.Millisecond} // slowdown 2.0
	a.Iterations = 1
	starved := s.App("gru", "G", 7*sim.Millisecond) // zero iterations

	if !starved.Starved() || a.Starved() {
		t.Fatal("Starved flags wrong")
	}
	if _, ok := starved.FiniteSlowdown(); ok {
		t.Fatal("FiniteSlowdown must report false for a starved app")
	}
	if sl, ok := a.FiniteSlowdown(); !ok || math.Abs(sl-2.0) > 1e-9 {
		t.Fatalf("FiniteSlowdown = (%v, %v), want (2.0, true)", sl, ok)
	}

	geo, n := s.SlowdownGeomean()
	if n != 1 {
		t.Fatalf("starved count = %d, want 1", n)
	}
	if math.IsInf(geo, 1) || math.IsNaN(geo) || math.Abs(geo-2.0) > 1e-9 {
		t.Fatalf("geomean = %v, want the finite 2.0 (starved app excluded)", geo)
	}

	// All apps starved: geomean degrades to 0, never NaN/Inf.
	empty := New()
	empty.App("lstm", "L", 7*sim.Millisecond)
	if geo, n := empty.SlowdownGeomean(); geo != 0 || n != 1 {
		t.Fatalf("all-starved geomean = (%v, %d), want (0, 1)", geo, n)
	}

	// The gem5 export must flag the starved app and keep every value
	// parseable (gem5's marker for undefined is "nan", never "+Inf").
	var buf bytes.Buffer
	if err := s.WriteGem5Style(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "inf") {
		t.Fatalf("gem5 export leaked an infinity:\n%s", out)
	}
	for _, want := range []string{
		"system.app.gru.slowdown", "system.app.gru.starved",
		"system.apps_starved", "system.slowdown_geomean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gem5 export missing %q", want)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "gru.slowdown") && !strings.Contains(line, "nan") {
			t.Errorf("starved slowdown not flagged as nan: %q", line)
		}
		if strings.Contains(line, "gru.starved") {
			if f := strings.Fields(line); len(f) < 2 || f[1] != "1" {
				t.Errorf("starved flag not set: %q", line)
			}
		}
	}

	// JSON over the aggregation-safe accessors must marshal; raw +Inf would
	// make encoding/json fail with an UnsupportedValueError.
	doc := map[string]float64{}
	for name, app := range s.Apps {
		sl, ok := app.FiniteSlowdown()
		if !ok {
			sl = -1
		}
		doc[name] = sl
	}
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("JSON export of clamped slowdowns failed: %v", err)
	}
	if _, err := json.Marshal(map[string]float64{"x": math.Inf(1)}); err == nil {
		t.Fatal("sanity: encoding/json should reject +Inf (the bug this guards)")
	}
}

func TestPredErr(t *testing.T) {
	var p PredErr
	p.ObserveCompute(110, 100) // +10%
	p.ObserveCompute(90, 100)  // -10%
	c, _, _ := p.MeanSigned()
	if math.Abs(c) > 1e-9 {
		t.Fatalf("mean signed compute error = %v, want 0", c)
	}
	if p.ComputeSumAbs != 0.2 {
		t.Fatalf("abs error sum = %v, want 0.2", p.ComputeSumAbs)
	}
	p.ObserveDMBytes(150, 100)
	_, dm, _ := p.MeanSigned()
	if math.Abs(dm-50) > 1e-9 {
		t.Fatalf("DM error = %v, want 50", dm)
	}
	p.ObserveMemTime(50, 100)
	_, _, mt := p.MeanSigned()
	if math.Abs(mt+50) > 1e-9 {
		t.Fatalf("mem time error = %v, want -50", mt)
	}
	p.ObserveBW(8e9, 4e9)
	if math.Abs(p.MeanSignedBW()-100) > 1e-9 {
		t.Fatalf("BW error = %v, want 100", p.MeanSignedBW())
	}
	// Zero actuals are skipped, not divided by.
	n := p.ComputeN
	p.ObserveCompute(10, 0)
	if p.ComputeN != n {
		t.Fatal("zero-actual sample must be skipped")
	}
}

// TestQuickSpreadOrdering: min <= median <= max for any set of runtimes.
func TestQuickSpreadOrdering(t *testing.T) {
	f := func(runtimes []uint16) bool {
		s := New()
		for i, rt := range runtimes {
			a := s.App(string(rune('a'+i%26))+string(rune('0'+i/26%10)), "X", 1000)
			a.Runtimes = []sim.Time{sim.Time(rt) + 1}
		}
		min, med, max, _ := s.SlowdownSpread()
		if len(s.Apps) == 0 {
			return min == 0 && med == 0 && max == 0
		}
		return min <= med && med <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteGem5Style(t *testing.T) {
	s := New()
	s.Makespan = 10 * sim.Millisecond
	s.ComputeBusy = 5 * sim.Millisecond
	s.Edges = 10
	s.Forwards = 4
	s.Colocations = 3
	s.BaselineBytes = 1000
	s.DRAMReadBytes = 200
	s.NodesDone = 20
	s.NodesMetDeadline = 18
	s.SchedCosts = []sim.Time{100, 300}
	a := s.App("gru", "G", 7*sim.Millisecond)
	a.Iterations = 2
	a.DeadlinesMet = 1
	a.Runtimes = []sim.Time{7 * sim.Millisecond, 7 * sim.Millisecond}

	var buf bytes.Buffer
	if err := s.WriteGem5Style(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Begin Simulation Statistics",
		"End Simulation Statistics",
		"sim_ticks", "system.forwards", "system.app.gru.iterations",
		"# Forwards per edge (%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gem5 stats missing %q", want)
		}
	}
	// Every stat line is name / value / # description.
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "----------") {
			continue
		}
		if !strings.Contains(line, "#") {
			t.Errorf("stat line without description: %q", line)
		}
		if fields := strings.Fields(line); len(fields) < 3 {
			t.Errorf("malformed stat line: %q", line)
		}
	}
}
