// Package exp is the evaluation harness: it runs scheduling scenarios
// (application mix x contention level x policy x platform knobs) and
// regenerates every table and figure of the paper's evaluation section.
package exp

import (
	"context"
	"fmt"

	"relief/internal/core"
	"relief/internal/dram"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/manager"
	"relief/internal/metrics"
	"relief/internal/predict"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// PolicyNames lists the six policies of the main comparison (Figs. 4-8) in
// the paper's plotting order.
var PolicyNames = []string{"FCFS", "GEDF-D", "GEDF-N", "LAX", "HetSched", "RELIEF"}

// FairnessPolicyNames adds LL and RELIEF-LAX for the QoS/fairness study
// (Figs. 9-10, Table VII).
var FairnessPolicyNames = []string{"FCFS", "GEDF-D", "GEDF-N", "LAX", "RELIEF-LAX", "LL", "HetSched", "RELIEF"}

// NewPolicy constructs a scheduling policy by its paper name.
func NewPolicy(name string) (sched.Policy, error) {
	switch name {
	case "FCFS":
		return sched.FCFS{}, nil
	case "GEDF-D":
		return sched.GEDFD{}, nil
	case "GEDF-N":
		return sched.GEDFN{}, nil
	case "LL":
		return sched.LL{}, nil
	case "LAX":
		return sched.LAX{}, nil
	case "HetSched":
		return sched.HetSched{}, nil
	case "RELIEF":
		return core.New(), nil
	case "RELIEF-LAX":
		return core.NewLAX(), nil
	case "RELIEF-NoFeas":
		return &core.RELIEF{Base: sched.LL{}, DisableFeasibility: true}, nil
	case "RELIEF-Unbounded":
		return &core.RELIEF{Base: sched.LL{}, UnboundedForwards: true}, nil
	case "RELIEF-HetSched":
		return &core.RELIEF{Base: sched.HetSched{}}, nil
	}
	return nil, fmt.Errorf("exp: unknown policy %q", name)
}

// Scenario describes one simulation.
type Scenario struct {
	Mix        []workload.App
	Contention workload.Contention
	Policy     string
	Topology   xbar.Topology
	// BWPredictor is "max", "last", "average", or "ewma" ("" = max).
	BWPredictor string
	DM          predict.DMMode
	// DisableForwarding runs without forwarding hardware (Table II).
	DisableForwarding bool
	// AlwaysWriteBack disables deferred write-back (ablation).
	AlwaysWriteBack bool
	// OutputPartitions overrides the double-buffered default (ablation).
	OutputPartitions int
	// Trace, if non-nil, records the simulation timeline.
	Trace *trace.Recorder
	// Metrics, if non-nil, collects simulated-time telemetry and latency
	// attribution (internal/metrics). Like Trace, it is excluded from the
	// sweep cache key: metricised runs must call Run directly, not Sweep.
	Metrics *metrics.Registry
	// MetricsInterval overrides the probe period (0 = 50 µs default).
	MetricsInterval sim.Time
	// DetailedDRAM uses the bank-level LPDDR5 controller; DRAMFCFS demotes
	// its scheduler from FR-FCFS to FCFS (extension study).
	DetailedDRAM bool
	DRAMFCFS     bool
	// Faults, if non-nil, installs deterministic fault injection and the
	// recovery machinery (resilience study). A zero-rate plan is
	// timing-neutral: results are bit-identical to no plan.
	Faults *fault.Plan
	// Platform, if non-nil, fully determines the platform configuration
	// (instances, interconnect, memory, predictors); the scenario's other
	// platform toggles are ignored.
	Platform *PlatformSpec
	// Period, if positive, selects periodic release: a fresh instance of
	// every mix application is released each period until Horizon,
	// regardless of completion (frame-queue arrivals). Periodic scenarios
	// take precedence over Contention and are the only ones that can be
	// checkpointed (docs/CHECKPOINT.md): between iterations the simulation
	// passes through quiescent instants.
	Period sim.Time
	// Horizon is the periodic-release cutoff (0 = the continuous-contention
	// default, 50 ms). Ignored unless Period > 0.
	Horizon sim.Time
}

// EffectiveHorizon returns the periodic run cutoff.
func (sc *Scenario) EffectiveHorizon() sim.Time {
	if sc.Horizon > 0 {
		return sc.Horizon
	}
	return workload.ContinuousHorizon
}

// Result couples a scenario with its measured statistics.
type Result struct {
	Scenario Scenario
	Stats    *stats.Stats
	// End is the simulation end time.
	End sim.Time
	// RowHitRate is the DRAM row-buffer hit rate (detailed DRAM only).
	RowHitRate float64
}

// Run executes the scenario to completion (or the continuous-contention
// horizon) and returns its metrics.
func Run(sc Scenario) (*Result, error) {
	return RunContext(context.Background(), sc)
}

// RunContext is Run with cancellation: once ctx is cancelled or times out
// the simulation aborts promptly (the kernel polls the context every few
// thousand events) and the context's error is returned with a nil Result —
// an abandoned run never leaks partial statistics. This is the entry point
// the serving layer (internal/serve) drives.
func RunContext(ctx context.Context, sc Scenario) (*Result, error) {
	cfg, err := sc.managerConfig()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	st := stats.New()
	m := manager.New(k, cfg, st)
	if err := submitMix(m, sc); err != nil {
		return nil, err
	}
	return finishRun(ctx, sc, k, m, st)
}

// managerConfig translates the scenario's platform knobs into a manager
// configuration (shared by cold runs, checkpoint warming, and restore —
// a restored run must rebuild exactly the platform the checkpoint saw).
func (sc *Scenario) managerConfig() (manager.Config, error) {
	policy, err := NewPolicy(sc.Policy)
	if err != nil {
		return manager.Config{}, err
	}
	var cfg manager.Config
	if sc.Platform != nil {
		cfg, err = sc.Platform.Apply(policy)
		if err != nil {
			return manager.Config{}, err
		}
	} else {
		cfg = manager.DefaultConfig(policy)
		cfg.Interconnect.Topology = sc.Topology
		cfg.DM = sc.DM
		cfg.DisableForwarding = sc.DisableForwarding
		cfg.AlwaysWriteBack = sc.AlwaysWriteBack
		if sc.OutputPartitions > 0 {
			cfg.OutputPartitions = sc.OutputPartitions
		}
		cfg.DetailedDRAM = sc.DetailedDRAM
		if sc.DRAMFCFS {
			cfg.DRAMPolicy = dram.FCFS
		}
		bw, err := predict.NewBW(sc.BWPredictor, cfg.Interconnect.DRAMBandwidth)
		if err != nil {
			return manager.Config{}, err
		}
		cfg.BW = bw
	}
	cfg.Fault = sc.Faults
	cfg.Trace = sc.Trace
	cfg.Metrics = sc.Metrics
	cfg.MetricsInterval = sc.MetricsInterval
	return cfg, nil
}

// submitMix registers the scenario's workload schedule with the manager: the
// periodic release grid when Period is set, otherwise one release of each
// mix application at t=0 (with continuous-contention rebuild closures when
// the scenario asks for them). A restored manager skips everything that
// completed before its capture instant.
func submitMix(m *manager.Manager, sc Scenario) error {
	if sc.Period > 0 {
		horizon := sc.EffectiveHorizon()
		for _, app := range sc.Mix {
			app := app
			build := func() *graph.DAG { return workload.MustBuild(app) }
			if err := m.SubmitPeriodic(build, sc.Period, horizon); err != nil {
				return err
			}
		}
		return nil
	}
	continuous := sc.Contention == workload.Continuous
	for _, app := range sc.Mix {
		app := app
		var rebuild func() *graph.DAG
		if continuous {
			rebuild = func() *graph.DAG { return workload.MustBuild(app) }
		}
		if err := m.Submit(workload.MustBuild(app), 0, rebuild); err != nil {
			return err
		}
	}
	return nil
}

// finishRun wires cancellation, drives the submitted simulation to its end,
// and assembles the result.
func finishRun(ctx context.Context, sc Scenario, k *sim.Kernel, m *manager.Manager, st *stats.Stats) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		k.SetInterrupt(func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		})
	}
	var end sim.Time
	switch {
	case sc.Period > 0:
		end = m.RunContinuous(sc.EffectiveHorizon())
	case sc.Contention == workload.Continuous:
		end = m.RunContinuous(workload.ContinuousHorizon)
	default:
		end = m.Run()
	}
	if k.Interrupted() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exp: run cancelled: %w", err)
		}
		return nil, fmt.Errorf("exp: run interrupted")
	}
	res := &Result{Scenario: sc, Stats: st, End: end}
	if dc := m.DRAMController(); dc != nil {
		res.RowHitRate = dc.RowHitRate()
	}
	return res, nil
}
