package hostif

import (
	"encoding/binary"
	"fmt"

	"relief/internal/accel"
)

// NumSPMPartitions is the maximum scratchpad partition count the metadata
// supports (paper Table IV: NUM_SPM_PARTITIONS = 3).
const NumSPMPartitions = 3

// AccState is the manager's per-accelerator metadata block (paper
// Table IV): MMR apertures for the accelerator and its DMA engine, the
// scratchpad partition addresses, the device status, the node whose output
// each partition holds, and the ongoing-read counts that protect
// partitions from write-after-read hazards.
//
// The paper gives the size as exactly 32 bytes with 32-bit pointers and 3
// partitions; that packing implies the partition addresses are stored as a
// base plus a stride (partitions are equal slices of the scratchpad) and
// the ongoing-read counters are bytes:
//
//	acc_mmr(4) + dma_mmr(4) + spm_base(4) + spm_stride(4) +
//	output[3](12) + status(1) + ongoing_reads[3](3) = 32.
type AccState struct {
	AccMMR       Pointer
	DMAMMR       Pointer
	SPMBase      Pointer
	SPMStride    uint32
	Output       [NumSPMPartitions]Pointer
	Status       uint8
	OngoingReads [NumSPMPartitions]uint8
}

// SPMAddr returns the address of partition i.
func (a *AccState) SPMAddr(i int) Pointer {
	if i < 0 || i >= NumSPMPartitions {
		panic(fmt.Sprintf("hostif: partition %d out of range", i))
	}
	return a.SPMBase + Pointer(i)*Pointer(a.SPMStride)
}

// AccStateBytes is the encoded size of one acc_state (paper: 32 bytes).
const AccStateBytes = 32

// ManagerHeaderBytes is the manager's queue-bookkeeping block, making the
// 7-accelerator metadata total 7 x 32 + 12 = 236 bytes, the paper's
// figure.
const ManagerHeaderBytes = 12

// TotalMetadataBytes returns the manager metadata footprint for a platform
// with n accelerators (paper: 236 bytes for 7).
func TotalMetadataBytes(n int) int { return n*AccStateBytes + ManagerHeaderBytes }

// Encode serialises the metadata block.
func (a *AccState) Encode() []byte {
	buf := make([]byte, 0, AccStateBytes)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, a.AccMMR)
	buf = le.AppendUint32(buf, a.DMAMMR)
	buf = le.AppendUint32(buf, a.SPMBase)
	buf = le.AppendUint32(buf, a.SPMStride)
	for _, p := range a.Output {
		buf = le.AppendUint32(buf, p)
	}
	buf = append(buf, a.Status)
	buf = append(buf, a.OngoingReads[:]...)
	if len(buf) != AccStateBytes {
		panic(fmt.Sprintf("hostif: acc_state encoded %d bytes", len(buf)))
	}
	return buf
}

// DecodeAccState parses one metadata block.
func DecodeAccState(b []byte) (AccState, error) {
	if len(b) < AccStateBytes {
		return AccState{}, fmt.Errorf("hostif: acc_state needs %d bytes, got %d", AccStateBytes, len(b))
	}
	le := binary.LittleEndian
	var a AccState
	a.AccMMR = le.Uint32(b)
	a.DMAMMR = le.Uint32(b[4:])
	a.SPMBase = le.Uint32(b[8:])
	a.SPMStride = le.Uint32(b[12:])
	for i := 0; i < NumSPMPartitions; i++ {
		a.Output[i] = le.Uint32(b[16+4*i:])
	}
	a.Status = b[28]
	copy(a.OngoingReads[:], b[29:32])
	return a, nil
}

// DefaultPlatformMetadata lays out metadata for the paper's 7-accelerator
// platform: MMR apertures at 0x4000_0000 + 64 KiB per device, scratchpad
// partitions carved evenly from each accelerator's Table I capacity.
func DefaultPlatformMetadata() []AccState {
	var out []AccState
	mmrBase := Pointer(0x4000_0000)
	spmBase := Pointer(0x5000_0000)
	for kind := accel.Kind(0); kind < accel.NumKinds; kind++ {
		a := AccState{
			AccMMR:    mmrBase,
			DMAMMR:    mmrBase + 0x1000,
			SPMBase:   spmBase,
			SPMStride: uint32(accel.SPADBytes[kind] / NumSPMPartitions),
		}
		mmrBase += 0x10000
		spmBase += 0x0100_0000
		out = append(out, a)
	}
	return out
}
