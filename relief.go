// Package relief is a transaction-level SoC simulator and scheduling
// framework reproducing "RELIEF: Relieving Memory Pressure In SoCs Via Data
// Movement-Aware Accelerator Scheduling" (Gupta & Dwarkadas, HPCA 2024).
//
// It models a mobile SoC with seven elementary loosely-coupled accelerators
// (ISP, grayscale, convolution, elem-matrix, canny-non-max, harris-non-max,
// edge-tracking), a hardware accelerator manager, scratchpad-to-scratchpad
// data forwarding, and eight scheduling policies: the RELIEF policy of the
// paper plus the FCFS, GEDF-D, GEDF-N, LL, LAX, and HetSched baselines and
// the RELIEF-LAX variant.
//
// The typical flow is: build (or load) application DAGs, configure a
// System with a policy, submit the DAGs, run, and inspect the Report:
//
//	sys := relief.NewSystem(relief.Config{Policy: "RELIEF"})
//	dag, _ := relief.BuildWorkload("canny")
//	sys.Submit(dag, 0)
//	report := sys.Run()
//	fmt.Println(report.Forwards, report.Colocations)
//
// The exported DAG/Node types alias the internal graph package, so DAGs
// built through this package interoperate with everything else.
package relief

import (
	"context"
	"fmt"
	"io"

	"relief/internal/accel"
	"relief/internal/ckpt"
	"relief/internal/core"
	"relief/internal/fault"
	"relief/internal/graph"
	"relief/internal/manager"
	"relief/internal/metrics"
	"relief/internal/predict"
	"relief/internal/sched"
	"relief/internal/sim"
	"relief/internal/stats"
	"relief/internal/trace"
	"relief/internal/workload"
	"relief/internal/xbar"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time = sim.Time

// Convenient duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// DAG is an application task graph; Node is one accelerator task within it.
type (
	DAG  = graph.DAG
	Node = graph.Node
)

// Kind identifies an accelerator type; Op the operation a task requests.
type (
	Kind = accel.Kind
	Op   = accel.Op
)

// The seven elementary accelerators of the platform.
const (
	ISP          = accel.ISP
	Grayscale    = accel.Grayscale
	Convolution  = accel.Convolution
	ElemMatrix   = accel.ElemMatrix
	CannyNonMax  = accel.CannyNonMax
	HarrisNonMax = accel.HarrisNonMax
	EdgeTracking = accel.EdgeTracking
)

// Common task operations (see the accel package for the full set).
const (
	OpDefault = accel.OpDefault
	OpAdd     = accel.OpAdd
	OpSub     = accel.OpSub
	OpMul     = accel.OpMul
	OpDiv     = accel.OpDiv
	OpSqr     = accel.OpSqr
	OpSqrt    = accel.OpSqrt
	OpAtan2   = accel.OpAtan2
	OpTanh    = accel.OpTanh
	OpSigmoid = accel.OpSigmoid
	OpMac     = accel.OpMac
	OpScale   = accel.OpScale
	OpThresh  = accel.OpThresh
)

// DeadlineMode selects how node deadlines derive from the DAG deadline.
type DeadlineMode = graph.DeadlineMode

// Deadline assignment schemes for Policy implementations.
const (
	DeadlineDAG = graph.DeadlineDAG
	DeadlineCPM = graph.DeadlineCPM
	DeadlineSDR = graph.DeadlineSDR
)

// Policy is the scheduling policy interface: it decides where a newly
// ready task is inserted into its per-accelerator-type ready queue.
// Policies additionally implementing the escalator extension (see
// internal/sched.Escalator and the custompolicy example) get RELIEF-style
// treatment of newly ready children.
type Policy = sched.Policy

// NewRELIEF returns the paper's RELIEF policy; NewRELIEFLAX its
// negative-laxity-de-prioritizing variant.
func NewRELIEF() Policy    { return core.New() }
func NewRELIEFLAX() Policy { return core.NewLAX() }

// PolicyByName constructs a policy from its paper name: "FCFS", "GEDF-D",
// "GEDF-N", "LL", "LAX", "HetSched", "RELIEF", or "RELIEF-LAX".
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "FCFS":
		return sched.FCFS{}, nil
	case "GEDF-D":
		return sched.GEDFD{}, nil
	case "GEDF-N":
		return sched.GEDFN{}, nil
	case "LL":
		return sched.LL{}, nil
	case "LAX":
		return sched.LAX{}, nil
	case "HetSched":
		return sched.HetSched{}, nil
	case "RELIEF":
		return core.New(), nil
	case "RELIEF-LAX":
		return core.NewLAX(), nil
	}
	return nil, fmt.Errorf("relief: unknown policy %q", name)
}

// NewDAG starts an empty application DAG with the given name, single-letter
// symbol, and relative deadline. Add nodes with DAG.AddNode, then the
// System finalizes it at submission.
func NewDAG(app, sym string, deadline Time) *DAG {
	return graph.New(app, sym, deadline)
}

// BuildWorkload builds one of the paper's five benchmark DAGs by name:
// "canny", "deblur", "gru", "harris", or "lstm".
func BuildWorkload(name string) (*DAG, error) {
	for a := workload.App(0); a < workload.NumApps; a++ {
		if a.Name() == name {
			return workload.Build(a)
		}
	}
	return nil, fmt.Errorf("relief: unknown workload %q", name)
}

// Config parameterises a System. The zero value plus a policy name gives
// the paper's platform: one instance of each accelerator, double-buffered
// output scratchpads, a shared bus, and Max predictors.
type Config struct {
	// Policy is a policy name for PolicyByName. Ignored if Custom is set.
	Policy string
	// Custom supplies a caller-implemented policy.
	Custom Policy
	// Crossbar switches the interconnect from the shared bus to a
	// crossbar.
	Crossbar bool
	// Instances overrides the number of accelerator instances per kind
	// (nil = one of each).
	Instances map[Kind]int
	// OutputPartitions overrides the per-accelerator output buffering
	// (default 2).
	OutputPartitions int
	// BandwidthPredictor selects the memory bandwidth predictor: "max"
	// (default), "last", "average", or "ewma".
	BandwidthPredictor string
	// PredictDataMovement enables the graph-analysis data-movement
	// predictor instead of the maximum-data-movement default.
	PredictDataMovement bool
	// DisableForwarding turns the forwarding hardware off entirely.
	DisableForwarding bool
	// Trace, if non-nil, records task phases, DMA transfers, and manager
	// activity; export with TraceRecorder.WriteChromeTrace or WriteText.
	Trace *TraceRecorder
}

// TraceRecorder collects a simulation timeline (see internal/trace).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty timeline recorder to pass in Config.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// MetricsRegistry collects simulated-time telemetry: probe-sampled counters
// and gauges, latency histograms, and per-task latency attribution (see
// internal/metrics and docs/OBSERVABILITY.md). Export the collected state
// with its WriteCSV, WriteJSON, and WritePrometheus methods after Run.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry to pass via WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// FaultPlan is a deterministic fault-injection specification (see
// docs/FAULTS.md); FaultRateSet holds its per-event probabilities. A
// zero-rate plan is timing-neutral: results are bit-identical to no plan.
type (
	FaultPlan    = fault.Plan
	FaultRateSet = fault.Rates
)

// FaultProfile builds a plan whose individual rates scale with a single
// headline fault rate (the profile used by the resilience study).
func FaultProfile(rate float64, seed int64) *FaultPlan { return fault.Profile(rate, seed) }

// Option customises a System beyond the Config struct.
type Option struct {
	apply func(*manager.Config)
	sys   func(*System)
}

// WithFaultPlan installs deterministic fault injection plus the recovery
// machinery (per-task watchdogs, bounded retry with backoff, DAG abort).
func WithFaultPlan(p *FaultPlan) Option {
	return Option{apply: func(c *manager.Config) { c.Fault = p }}
}

// WithWatchdogMult scales the per-task watchdog deadline (predicted
// runtime x mult; 0 = default 8).
func WithWatchdogMult(mult float64) Option {
	return Option{apply: func(c *manager.Config) { c.WatchdogMult = mult }}
}

// WithMaxRetries bounds per-node re-dispatch attempts before the DAG is
// aborted (0 = default 3).
func WithMaxRetries(n int) Option {
	return Option{apply: func(c *manager.Config) { c.MaxRetries = n }}
}

// WithRetryBackoff sets the base re-dispatch delay, doubled per retry
// (0 = default 2 µs).
func WithRetryBackoff(d Time) Option {
	return Option{apply: func(c *manager.Config) { c.RetryBackoff = d }}
}

// WithMetrics attaches a telemetry registry to the simulation. Probes are
// read-only: a metricised run produces bit-identical simulation results.
func WithMetrics(r *MetricsRegistry) Option {
	return Option{apply: func(c *manager.Config) { c.Metrics = r }}
}

// WithMetricsInterval sets the probe sampling period (0 = 50 µs default).
func WithMetricsInterval(d Time) Option {
	return Option{apply: func(c *manager.Config) { c.MetricsInterval = d }}
}

// WithCheckpoint arms checkpoint capture: the system snapshots its complete
// state at the first quiescent instant (no work in flight, only replayable
// events pending) at or after armAt. Quiescent instants occur between the
// iterations of SubmitPeriodic workloads; a system whose iterations always
// overlap never quiesces and Checkpoint reports that after the run. See
// docs/CHECKPOINT.md. Tracing cannot cross a checkpoint, so WithCheckpoint
// is incompatible with Config.Trace.
func WithCheckpoint(armAt Time) Option {
	return Option{sys: func(s *System) { s.mgr.ArmCheckpoint(armAt) }}
}

// System is a configured SoC simulation accepting DAG submissions.
type System struct {
	kernel *sim.Kernel
	mgr    *manager.Manager
	st     *stats.Stats
	ran    bool
	err    error
}

// NewSystem builds a simulation from cfg plus options. Configuration
// errors (an invalid policy or predictor name) do not panic: they are
// reported by Err and by every subsequent Submit call, so externally
// supplied names can be validated after construction.
func NewSystem(cfg Config, opts ...Option) *System {
	k := sim.NewKernel()
	st := stats.New()
	s := &System{kernel: k, st: st}
	mcfg, err := buildConfig(cfg, opts)
	if err != nil {
		s.err = err
		return s
	}
	s.mgr = manager.New(k, mcfg, st)
	for _, o := range opts {
		if o.sys != nil {
			o.sys(s)
		}
	}
	return s
}

// buildConfig translates the facade Config plus config-level options into a
// manager configuration. Both NewSystem and RunFrom use it: a restored
// system must rebuild exactly the platform the checkpointed system ran on.
func buildConfig(cfg Config, opts []Option) (manager.Config, error) {
	policy := cfg.Custom
	if policy == nil {
		name := cfg.Policy
		if name == "" {
			name = "RELIEF"
		}
		p, err := PolicyByName(name)
		if err != nil {
			return manager.Config{}, err
		}
		policy = p
	}
	mcfg := manager.DefaultConfig(policy)
	if cfg.Crossbar {
		mcfg.Interconnect.Topology = xbar.Crossbar
	}
	for k, n := range cfg.Instances {
		if k < accel.NumKinds && n > 0 {
			mcfg.Instances[k] = n
		}
	}
	if cfg.OutputPartitions > 0 {
		mcfg.OutputPartitions = cfg.OutputPartitions
	}
	if cfg.BandwidthPredictor != "" {
		bw, err := predict.NewBW(cfg.BandwidthPredictor, mcfg.Interconnect.DRAMBandwidth)
		if err != nil {
			return manager.Config{}, err
		}
		mcfg.BW = bw
	}
	if cfg.PredictDataMovement {
		mcfg.DM = predict.DMPredict
	}
	mcfg.DisableForwarding = cfg.DisableForwarding
	mcfg.Trace = cfg.Trace
	for _, o := range opts {
		if o.apply != nil {
			o.apply(&mcfg)
		}
	}
	return mcfg, nil
}

// RunFrom rebuilds a warmed System from a checkpoint envelope produced by
// Checkpoint. cfg and opts must reproduce the checkpointed system's
// configuration (the envelope checksum guards integrity, not compatibility —
// mismatched platforms are detected during restore where possible). The
// caller then re-submits the same workload schedule — identical Submit /
// SubmitPeriodic calls — and runs as usual; releases and scripted events
// that predate the capture instant are skipped automatically, so the resumed
// run is byte-identical to an uninterrupted one. The returned Time is the
// simulated instant the checkpoint was captured at.
func RunFrom(cfg Config, envelope []byte, opts ...Option) (*System, Time, error) {
	env, err := ckpt.Open(envelope)
	if err != nil {
		return nil, 0, err
	}
	mcfg, err := buildConfig(cfg, opts)
	if err != nil {
		return nil, 0, err
	}
	if mcfg.Trace != nil {
		return nil, 0, fmt.Errorf("relief: tracing cannot cross a checkpoint")
	}
	k := sim.NewKernel()
	m, st, err := manager.Restore(k, mcfg, env.Payload)
	if err != nil {
		return nil, 0, err
	}
	s := &System{kernel: k, mgr: m, st: st}
	for _, o := range opts {
		if o.sys != nil {
			o.sys(s)
		}
	}
	return s, Time(env.CapturedPs), nil
}

// Err returns the first error the system recorded: a construction error
// (invalid policy or predictor name) or a runtime error such as a failing
// SubmitLoop rebuild. Nil means the system is healthy.
func (s *System) Err() error {
	if s.err != nil {
		return s.err
	}
	if s.mgr != nil {
		return s.mgr.Err()
	}
	return nil
}

// Submit registers a DAG for release at the given time. The DAG is
// finalized (compute times filled, acyclicity checked) if it has not been.
func (s *System) Submit(d *DAG, release Time) error {
	if s.err != nil {
		return s.err
	}
	if err := d.Finalize(); err != nil {
		return err
	}
	return s.mgr.Submit(d, release, nil)
}

// SubmitLoop registers an application that re-submits itself whenever an
// instance finishes (continuous contention). build must return a fresh DAG
// each call; a failing rebuild mid-run stops the loop and is reported by
// Err.
func (s *System) SubmitLoop(build func() *DAG, release Time) error {
	if s.err != nil {
		return s.err
	}
	first := build()
	if first == nil {
		return fmt.Errorf("relief: SubmitLoop build returned nil DAG")
	}
	if err := first.Finalize(); err != nil {
		return err
	}
	return s.mgr.Submit(first, release, func() *DAG {
		d := build()
		if d == nil {
			return nil // the manager records the error and stops the loop
		}
		if err := d.Finalize(); err != nil {
			if s.err == nil {
				s.err = err
			}
			return nil
		}
		return d
	})
}

// SubmitPeriodic releases a fresh instance of the application every period
// until the horizon — frame-queue arrivals, e.g. a 60 FPS camera pipeline.
// Run the system with RunFor(horizon).
func (s *System) SubmitPeriodic(build func() *DAG, period, horizon Time) error {
	if s.err != nil {
		return s.err
	}
	var buildErr error
	err := s.mgr.SubmitPeriodic(func() *DAG {
		d := build()
		if d == nil {
			buildErr = fmt.Errorf("relief: SubmitPeriodic build returned nil DAG")
			return nil
		}
		if err := d.Finalize(); err != nil {
			buildErr = err
			return nil
		}
		return d
	}, period, horizon)
	if buildErr != nil {
		return buildErr
	}
	return err
}

// Run executes the simulation until every submitted DAG completes and
// returns the report. A System can only run once.
func (s *System) Run() *Report {
	s.mustRunOnce()
	if s.mgr != nil {
		s.mgr.Run()
	}
	return newReport(s.st)
}

// RunFor executes the simulation until the horizon (for SubmitLoop
// workloads) and returns the report over finished work.
func (s *System) RunFor(horizon Time) *Report {
	s.mustRunOnce()
	if s.mgr != nil {
		s.mgr.RunContinuous(horizon)
	}
	return newReport(s.st)
}

// RunContext is Run with cancellation: the simulation aborts promptly once
// ctx is cancelled or times out, returning ctx's error and no report —
// an abandoned run never yields partial statistics. The cancellation
// check is polled on the simulation goroutine (every few thousand kernel
// events), so it is safe to cancel from another goroutine; this is the
// entry point the serving layer drives (see internal/serve).
func (s *System) RunContext(ctx context.Context) (*Report, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mustRunOnce()
	s.installInterrupt(ctx)
	s.mgr.Run()
	if err := s.runErr(ctx); err != nil {
		return nil, err
	}
	return newReport(s.st), nil
}

// RunForContext is RunFor with cancellation, with the same contract as
// RunContext.
func (s *System) RunForContext(ctx context.Context, horizon Time) (*Report, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mustRunOnce()
	s.installInterrupt(ctx)
	s.mgr.RunContinuous(horizon)
	if err := s.runErr(ctx); err != nil {
		return nil, err
	}
	return newReport(s.st), nil
}

// installInterrupt arms the kernel's cancellation poll with ctx's Done
// channel. A context that can never be cancelled installs nothing, keeping
// the hot dispatch loop poll-free.
func (s *System) installInterrupt(ctx context.Context) {
	done := ctx.Done()
	if done == nil {
		return
	}
	s.kernel.SetInterrupt(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
}

// runErr distils a finished context-aware run into its error: the context's
// cancellation cause if the kernel was interrupted, else any runtime error
// the manager recorded.
func (s *System) runErr(ctx context.Context) error {
	if s.kernel.Interrupted() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("relief: run cancelled: %w", err)
		}
		return fmt.Errorf("relief: run interrupted")
	}
	return s.Err()
}

func (s *System) mustRunOnce() {
	if s.ran {
		// Running a System twice is API misuse (the kernel cannot rewind),
		// not a runtime failure the caller could handle.
		panic("relief: System has already run") //lint:allow nopanic double-Run is programmer error, like sync.Once misuse
	}
	s.ran = true
}

// Checkpoint returns the sealed relief-ckpt/1 envelope captured during the
// run (the system must have been built with WithCheckpoint and run to
// completion). It errors if no capture happened — the workload never
// quiesced after the arm instant. Restore with RunFrom.
func (s *System) Checkpoint() ([]byte, error) {
	if err := s.Err(); err != nil {
		return nil, err
	}
	data, at, err := s.mgr.CheckpointData()
	if err != nil {
		return nil, err
	}
	return ckpt.Seal("", "", int64(at), data)
}

// Stats exposes the raw metric sink for advanced use.
func (s *System) Stats() *stats.Stats { return s.st }

// WriteGem5Stats dumps the run's statistics in gem5's stats.txt format —
// the output format of the paper's artifact.
func (s *System) WriteGem5Stats(w io.Writer) error { return s.st.WriteGem5Style(w) }

// Report summarises a finished simulation.
type Report struct {
	// Edge materialisation.
	Edges       int
	Forwards    int
	Colocations int
	// Traffic and energy.
	DRAMBytes       int64
	SpadToSpadBytes int64
	DRAMEnergyJ     float64
	SPADEnergyJ     float64
	// Deadlines.
	NodesDone        int
	NodesMetDeadline int
	// Timing.
	Makespan Time
	// Resilience (all zero unless a fault plan was installed).
	AbortedDAGs         int
	Retries             int
	WatchdogFires       int
	InstanceDeaths      int
	InvalidatedForwards int
	RecoveryDRAMBytes   int64
	// MTTR is the mean time from a node's first failure to its eventual
	// completion.
	MTTR Time
	// Per-application results, keyed by app name.
	Apps map[string]AppReport

	st *stats.Stats
}

// AppReport summarises one application within a run.
type AppReport struct {
	Iterations   int
	DeadlinesMet int
	// Aborted counts DAG instances cancelled by the recovery machinery.
	Aborted int
	// Slowdown is +Inf when Starved; check the flag (or math.IsInf) before
	// aggregating or serializing it — encoding/json rejects non-finite
	// floats.
	Slowdown float64
	// Starved flags an application with no finished iteration.
	Starved  bool
	Runtimes []Time
}

func newReport(st *stats.Stats) *Report {
	dramE, spadE := st.MemoryEnergy()
	r := &Report{
		Edges:            st.Edges,
		Forwards:         st.Forwards,
		Colocations:      st.Colocations,
		DRAMBytes:        st.DRAMReadBytes + st.DRAMWriteBytes,
		SpadToSpadBytes:  st.SpadXferBytes,
		DRAMEnergyJ:      dramE,
		SPADEnergyJ:      spadE,
		NodesDone:        st.NodesDone,
		NodesMetDeadline: st.NodesMetDeadline,
		Makespan:         st.Makespan,

		AbortedDAGs:         st.Faults.DAGsAborted,
		Retries:             st.Faults.Retries,
		WatchdogFires:       st.Faults.WatchdogFires,
		InstanceDeaths:      st.Faults.InstanceDeaths,
		InvalidatedForwards: st.Faults.InvalidatedForwards,
		RecoveryDRAMBytes:   st.Faults.RecoveryDRAMBytes,
		MTTR:                st.Faults.MTTR(),

		Apps: make(map[string]AppReport),
		st:   st,
	}
	for name, a := range st.Apps {
		r.Apps[name] = AppReport{
			Iterations:   a.Iterations,
			DeadlinesMet: a.DeadlinesMet,
			Aborted:      a.Aborted,
			Slowdown:     a.Slowdown(),
			Starved:      a.Starved(),
			Runtimes:     append([]Time(nil), a.Runtimes...),
		}
	}
	return r
}

// NodeDeadlinePct returns the percentage of finished nodes that met their
// deadline.
func (r *Report) NodeDeadlinePct() float64 { return r.st.NodeDeadlinePct() }

// ForwardsPerEdge returns forwards/edges and colocations/edges in percent.
func (r *Report) ForwardsPerEdge() (fwd, col float64) { return r.st.ForwardsPerEdge() }
