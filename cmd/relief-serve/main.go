// relief-serve exposes the simulator as an HTTP/JSON service: POST a
// scenario to /run and get the same summary and relief-metrics/1 document
// the CLIs produce, deduplicated across concurrent identical requests and
// cached by content digest. See docs/SERVING.md.
//
// With -peers the replica joins a fleet: every scenario digest is placed on
// one owner by consistent hashing, non-owned requests probe the owner's
// cache and forward to it, and POST /sweep fans a whole grid out across the
// fleet (see "Cluster mode" in docs/SERVING.md).
//
// Usage:
//
//	relief-serve -addr 127.0.0.1:8080
//	relief-serve -addr 127.0.0.1:0 -workers 4 -cache 256
//	relief-serve -addr 127.0.0.1:8081 -peers http://127.0.0.1:8082,http://127.0.0.1:8083
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relief/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue capacity (full queue returns 429)")
	cacheCap := flag.Int("cache", 128, "result cache capacity in entries")
	timeout := flag.Duration("timeout", 60*time.Second, "per-simulation wall-clock budget")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before cancelling runs")
	peers := flag.String("peers", "", "comma-separated peer base URLs; enables cluster mode")
	self := flag.String("self", "", "this replica's advertised base URL in cluster mode (default http://<listen addr>)")
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	s := serve.New(serve.Config{
		Workers:  *workers,
		QueueCap: *queue,
		CacheCap: *cacheCap,
		Timeout:  *timeout,
	})
	if *peers != "" {
		adv := *self
		if adv == "" {
			adv = "http://" + l.Addr().String()
		}
		var ps []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				ps = append(ps, p)
			}
		}
		s.ConfigureCluster(adv, ps)
		fmt.Printf("relief-serve: cluster mode, self=%s peers=%s\n", adv, strings.Join(ps, ","))
	}
	// Printed before serving so scripts using an ephemeral port can scrape
	// the actual address.
	fmt.Printf("relief-serve: listening on http://%s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Serve(l) }()

	select {
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
		fmt.Println("relief-serve: draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Drain(dctx); err != nil {
			fatal(err)
		}
		<-errCh // http.ErrServerClosed
		fmt.Println("relief-serve: stopped")
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-serve: %v\n", err)
	os.Exit(1)
}
