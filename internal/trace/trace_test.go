package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"relief/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Instant(Release, "x", "manager", 0, nil)
	r.Begin(TaskCompute, "x", "lane", 0, nil)
	r.End(TaskCompute, "x", "lane", 1)
	r.Span(Forward, "x", "lane", 0, 1, nil)
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must record nothing")
	}
}

func TestBeginEndPairing(t *testing.T) {
	r := NewRecorder()
	r.Begin(TaskCompute, "n1", "em#0", 10, nil)
	r.End(TaskCompute, "n1", "em#0", 25)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Start != 10 || evs[0].End != 25 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDanglingBeginClosedAtExport(t *testing.T) {
	r := NewRecorder()
	r.Begin(TaskInput, "n1", "em#0", 10, nil)
	evs := r.Events()
	if evs[0].End != evs[0].Start {
		t.Fatalf("dangling interval not closed: %+v", evs[0])
	}
}

func TestEndWithoutBeginIgnored(t *testing.T) {
	r := NewRecorder()
	r.End(TaskCompute, "ghost", "em#0", 5)
	if r.Len() != 0 {
		t.Fatal("End without Begin recorded something")
	}
}

func TestEventsSortedByStart(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "b", "l", 20, 30, nil)
	r.Span(TaskCompute, "a", "l", 5, 10, nil)
	r.Instant(Release, "c", "l", 1, nil)
	evs := r.Events()
	if evs[0].Name != "c" || evs[1].Name != "a" || evs[2].Name != "b" {
		t.Fatalf("not sorted: %+v", evs)
	}
}

func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		TaskCompute: "compute", TaskInput: "input-dma", Writeback: "writeback",
		Forward: "forward", Schedule: "schedule", Release: "release", Deadline: "deadline",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("out-of-range kind should format")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "node1", "em#0", sim.Microsecond, 3*sim.Microsecond, nil)
	r.Instant(Release, "dag", "manager", 0, nil)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "node1") || !strings.Contains(out, "dur=2.000us") {
		t.Fatalf("text output missing content:\n%s", out)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Span(TaskCompute, "node1", "em#0", sim.Microsecond, 3*sim.Microsecond,
		map[string]string{"edge": "forward"})
	r.Instant(Release, "dag", "manager", 0, nil)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 lane metadata records + 2 events.
	if len(out) != 4 {
		t.Fatalf("got %d records, want 4", len(out))
	}
	var compute map[string]any
	for _, rec := range out {
		if rec["cat"] == "compute" {
			compute = rec
		}
	}
	if compute == nil {
		t.Fatal("compute event missing")
	}
	if compute["ph"] != "X" || compute["dur"].(float64) != 2 || compute["ts"].(float64) != 1 {
		t.Fatalf("compute event wrong: %v", compute)
	}
	// Lanes get distinct thread ids.
	tids := map[float64]bool{}
	for _, rec := range out {
		if rec["ph"] == "M" {
			tids[rec["tid"].(float64)] = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("expected 2 lanes, got %d", len(tids))
	}
}
