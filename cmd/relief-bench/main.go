// relief-bench regenerates the paper's evaluation tables and figures as
// text tables.
//
// Usage:
//
//	relief-bench                 # run every experiment
//	relief-bench -exp fig4       # one experiment
//	relief-bench -list           # list experiment names
//
// Profiling and benchmarking the simulator itself:
//
//	relief-bench -cpuprofile cpu.out   # pprof CPU profile of the run
//	relief-bench -memprofile mem.out   # heap profile at exit
//	relief-bench -trace trace.out      # runtime execution trace
//	relief-bench -benchjson auto       # BENCH_<date>.json trajectory report
//	relief-bench -benchjson auto -sweepbench   # + distributed sweep throughput
//
// The -benchjson report records, per experiment, the harness wall time,
// how many scenarios were newly simulated, kernel events dispatched and
// Event heap allocations for those scenarios, and the resulting events/sec
// throughput; see docs/MODEL.md for the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"relief/internal/exp"
	"relief/internal/metrics"
	"relief/internal/workload"
)

type generator func(*exp.Sweep) ([]*exp.Table, error)

func one(fn func(*exp.Sweep) (*exp.Table, error)) generator {
	return func(s *exp.Sweep) ([]*exp.Table, error) {
		t, err := fn(s)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	}
}

func perLevel(fn func(*exp.Sweep, workload.Contention) (*exp.Table, error)) generator {
	return func(s *exp.Sweep) ([]*exp.Table, error) {
		var out []*exp.Table
		for _, lvl := range []workload.Contention{workload.Low, workload.Medium, workload.High, workload.Continuous} {
			t, err := fn(s, lvl)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	}
}

var experiments = map[string]generator{
	"table2": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.Table2()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"fig4": perLevel(exp.Fig4),
	"fig5": perLevel(exp.Fig5),
	"fig6": one(exp.Fig6),
	"fig7": perLevel(exp.Fig7),
	"fig8": perLevel(exp.Fig8),
	"fig9": func(s *exp.Sweep) ([]*exp.Table, error) {
		a, b, err := exp.Fig9(s, workload.High)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{a, b}, nil
	},
	"fig10": func(s *exp.Sweep) ([]*exp.Table, error) {
		a, b, err := exp.Fig9(s, workload.Continuous)
		if err != nil {
			return nil, err
		}
		return []*exp.Table{a, b}, nil
	},
	"table7":   one(exp.Table7),
	"table8":   one(exp.Table8),
	"fig11":    one(exp.Fig11),
	"fig12":    one(exp.Fig12),
	"fig13":    one(exp.Fig13),
	"ablation": one(exp.Ablation),
	"dram":     one(exp.DRAMStudy),
	"energy":   one(exp.EnergyStudy),
	"faults":   one(exp.FaultStudy),
	"scaling": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.ScalingStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"periodic": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.PeriodicStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"tiled": func(*exp.Sweep) ([]*exp.Table, error) {
		t, err := exp.TiledStudy()
		if err != nil {
			return nil, err
		}
		return []*exp.Table{t}, nil
	},
	"attribution": func(*exp.Sweep) ([]*exp.Table, error) {
		t, regs, err := exp.AttributionStudy("CGL", exp.PolicyNames, 0)
		if err != nil {
			return nil, err
		}
		if metricsPrefix != "" {
			if err := exportRegistries(regs, metricsPrefix); err != nil {
				return nil, err
			}
		}
		return []*exp.Table{t}, nil
	},
}

// metricsPrefix is the -metrics flag value; when set, the attribution
// experiment writes each policy's registry as <prefix>-<policy>.{csv,json,prom}.
var metricsPrefix string

func exportRegistries(regs map[string]*metrics.Registry, prefix string) error {
	for policy, reg := range regs {
		base := prefix + "-" + policy
		for suffix, fn := range map[string]func(io.Writer) error{
			".csv":  reg.WriteCSV,
			".json": reg.WriteJSON,
			".prom": reg.WritePrometheus,
		} {
			f, err := os.Create(base + suffix)
			if err != nil {
				return err
			}
			if err := fn(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// order fixes a presentation order for -exp all.
var order = []string{
	"table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"table7", "table8", "fig11", "fig12", "fig13", "ablation", "dram",
	"periodic", "tiled", "energy", "scaling", "faults", "attribution",
}

// benchEntry is one experiment's row in the -benchjson report.
type benchEntry struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	// Scenarios newly simulated while this experiment ran (scenarios
	// already in the sweep cache cost nothing and are not recounted).
	Scenarios    int     `json:"scenarios"`
	EventsFired  uint64  `json:"events_fired"`
	EventAllocs  uint64  `json:"event_allocs"`
	EventsPerSec float64 `json:"events_per_second"`
}

// benchReport is the top-level -benchjson document (schema relief-bench/1).
type benchReport struct {
	Schema      string       `json:"schema"`
	Date        string       `json:"date"`
	GoVersion   string       `json:"go"`
	Jobs        int          `json:"jobs"`
	Experiments []benchEntry `json:"experiments"`
	Total       benchEntry   `json:"total"`
	// Sweep reports distributed sweep throughput (-sweepbench).
	Sweep *sweepBenchReport `json:"sweep,omitempty"`
}

// sample charges everything newly simulated since the previous sample to
// the named experiment.
func (r *benchReport) sample(name string, wall time.Duration, s *exp.Sweep) {
	scen, events, allocs := s.CostTotals()
	e := benchEntry{
		Name:        name,
		WallSeconds: wall.Seconds(),
		Scenarios:   scen - r.Total.Scenarios,
		EventsFired: events - r.Total.EventsFired,
		EventAllocs: allocs - r.Total.EventAllocs,
	}
	if e.WallSeconds > 0 {
		e.EventsPerSec = float64(e.EventsFired) / e.WallSeconds
	}
	r.Experiments = append(r.Experiments, e)
	r.Total.WallSeconds += e.WallSeconds
	r.Total.Scenarios = scen
	r.Total.EventsFired = events
	r.Total.EventAllocs = allocs
}

func main() {
	expFlag := flag.String("exp", "all", "experiment to run (see -list)")
	format := flag.String("format", "text", "output format: text or csv")
	var jobs int
	flag.IntVar(&jobs, "jobs", runtime.GOMAXPROCS(0), "parallel simulations while prefetching the scenario grid")
	flag.IntVar(&jobs, "j", runtime.GOMAXPROCS(0), "shorthand for -jobs")
	jsonOut := flag.String("json", "", "also dump every raw scenario result as JSON to this file")
	benchJSON := flag.String("benchjson", "", `write a benchmark-trajectory report to this file ("auto" = BENCH_<date>.json)`)
	sweepBench := flag.Bool("sweepbench", false,
		"with -benchjson: also measure POST /sweep throughput against in-process fleets of 1 and 3 replicas")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	traceOut := flag.String("trace", "", "write a runtime execution trace to this file")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.StringVar(&metricsPrefix, "metrics", "",
		"with the attribution experiment: write per-policy telemetry as <prefix>-<policy>.{csv,json,prom}")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	if _, ok := experiments[*expFlag]; !ok && *expFlag != "all" {
		fmt.Fprintf(os.Stderr, "relief-bench: unknown experiment %q (use -list)\n", *expFlag)
		os.Exit(2)
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "relief-bench: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}
	if err := run(*expFlag, *format, *jsonOut, *benchJSON, *cpuProfile, *memProfile, *traceOut, jobs, *sweepBench); err != nil {
		fmt.Fprintf(os.Stderr, "relief-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(expName, format, jsonOut, benchJSON, cpuProfile, memProfile, traceOut string, jobs int, sweepBench bool) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}

	names := order
	if expName != "all" {
		if _, ok := experiments[expName]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", expName)
		}
		names = []string{expName}
	}
	report := &benchReport{
		Schema:    "relief-bench/1",
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Jobs:      jobs,
	}
	sweep := exp.NewSweep()
	if expName == "all" && jobs > 1 {
		t0 := time.Now()
		sweep.Warm(exp.MainGrid(), jobs)
		if err := sweep.Err(); err != nil {
			return err
		}
		report.sample("warm", time.Since(t0), sweep)
	}
	for _, name := range names {
		t0 := time.Now()
		tables, err := experiments[name](sweep)
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		report.sample(name, time.Since(t0), sweep)
		for _, t := range tables {
			switch format {
			case "csv":
				if err := t.RenderCSV(os.Stdout); err != nil {
					return err
				}
				fmt.Println()
			default:
				t.Render(os.Stdout)
			}
		}
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sweep.DumpJSON(f); err != nil {
			return err
		}
	}
	if benchJSON != "" {
		if sweepBench {
			sb, err := runSweepBench()
			if err != nil {
				return err
			}
			report.Sweep = sb
		}
		report.Total.Name = "total"
		if report.Total.WallSeconds > 0 {
			report.Total.EventsPerSec = float64(report.Total.EventsFired) / report.Total.WallSeconds
		}
		if benchJSON == "auto" {
			benchJSON = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
		}
		f, err := os.Create(benchJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
