// Package design reproduces the paper's accelerator design methodology
// (§IV-B): each fixed-function accelerator is designed in isolation by
// sweeping the number of functional units and scratchpad memory ports and
// choosing the configuration with the minimum energy x delay^2 (ED^2)
// product, following gem5-Aladdin/SALAM practice.
//
// The datapath model is analytic: a task's latency is set by the slower of
// its compute side (work operations over functional units) and its memory
// side (scratchpad accesses over ports), plus a fixed pipeline overhead;
// energy combines per-operation dynamic energy (with a wiring/mux penalty
// that grows with datapath width) and leakage proportional to area and
// runtime. The ED^2 optimum therefore sits at the compute/memory balance
// knee: units added past the knee no longer reduce delay but keep adding
// energy.
package design

import (
	"fmt"
	"math"

	"relief/internal/accel"
	"relief/internal/sim"
)

// Kernel describes one accelerator's per-task workload on the reference
// 128x128 input.
type Kernel struct {
	Kind accel.Kind
	// WorkOps is the number of datapath operations per task.
	WorkOps float64
	// MemOps is the number of scratchpad accesses per task.
	MemOps float64
	// FixedCycles is the pipeline fill/drain and control overhead.
	FixedCycles float64
}

// Config is one design point.
type Config struct {
	FUs   int // functional units
	Ports int // scratchpad ports
}

// Space bounds the sweep (paper: "varying the configuration in terms of
// the number of functional units and memory ports").
type Space struct {
	MaxFUs, MaxPorts int
}

// DefaultSpace is a mobile-accelerator sized sweep.
func DefaultSpace() Space { return Space{MaxFUs: 16, MaxPorts: 8} }

// Technology constants for the analytic model (1 GHz clock, 16 nm-class
// numbers; absolute values cancel in ED^2 comparisons).
const (
	ClockHz = 1e9
	// Dynamic energy per work op / per scratchpad access (J).
	eOp  = 0.8e-12
	eMem = 1.6e-12
	// Wiring/mux dynamic penalty, quadratic in datapath width: widening
	// the operand network costs superlinearly, which is what bounds the
	// ED^2 optimum away from max-width designs.
	alphaFU   = 0.25
	alphaPort = 0.35
	// Leakage power per unit / per port (W).
	leakFU   = 0.12e-3
	leakPort = 0.20e-3
)

// Evaluate returns the task latency and energy of a design point.
func Evaluate(k Kernel, c Config) (latency sim.Time, energyJ float64) {
	if c.FUs < 1 || c.Ports < 1 {
		panic(fmt.Sprintf("design: invalid config %+v", c))
	}
	computeCycles := k.WorkOps / float64(c.FUs)
	memCycles := k.MemOps / float64(c.Ports)
	cycles := math.Max(computeCycles, memCycles) + k.FixedCycles
	seconds := cycles / ClockHz
	wf := float64(c.FUs - 1)
	wp := float64(c.Ports - 1)
	dyn := k.WorkOps*eOp*(1+alphaFU*wf*wf) +
		k.MemOps*eMem*(1+alphaPort*wp*wp)
	leak := seconds * (float64(c.FUs)*leakFU + float64(c.Ports)*leakPort)
	return sim.Time(seconds * float64(sim.Second)), dyn + leak
}

// ED2 returns the energy x delay^2 metric of a design point (J*s^2).
func ED2(k Kernel, c Config) float64 {
	d, e := Evaluate(k, c)
	s := d.Seconds()
	return e * s * s
}

// Point is one evaluated design point.
type Point struct {
	Config  Config
	Latency sim.Time
	EnergyJ float64
	ED2     float64
}

// Sweep evaluates the whole space, returning all points and the index of
// the ED^2 optimum.
func Sweep(k Kernel, sp Space) (points []Point, best int) {
	if sp.MaxFUs < 1 || sp.MaxPorts < 1 {
		panic("design: empty space")
	}
	best = 0
	for fu := 1; fu <= sp.MaxFUs; fu++ {
		for p := 1; p <= sp.MaxPorts; p++ {
			c := Config{FUs: fu, Ports: p}
			d, e := Evaluate(k, c)
			s := d.Seconds()
			points = append(points, Point{Config: c, Latency: d, EnergyJ: e, ED2: e * s * s})
			if points[len(points)-1].ED2 < points[best].ED2 {
				best = len(points) - 1
			}
		}
	}
	return points, best
}

// Choose returns the min-ED^2 design point for the kernel.
func Choose(k Kernel, sp Space) Point {
	pts, best := Sweep(k, sp)
	return pts[best]
}

// Kernels reconstructs the per-task workload of the seven accelerators on
// 128x128 inputs. Counts are LLVM-IR-level operations — the granularity
// gem5-SALAM's datapath models execute, where every address computation,
// load, compare, and branch is an op (typically 5-10 IR ops per arithmetic
// op) — tuned so the min-ED^2 design's latency approximates the calibrated
// Table II compute times the rest of the simulator uses.
func Kernels() []Kernel {
	const px = 128 * 128
	return []Kernel{
		{Kind: accel.ISP, WorkOps: 14 * px, MemOps: 8 * px, FixedCycles: 512},
		{Kind: accel.Grayscale, WorkOps: 2 * px, MemOps: 3 * px, FixedCycles: 256},
		{Kind: accel.Convolution, WorkOps: 470 * px, MemOps: 30 * px, FixedCycles: 1024},
		{Kind: accel.ElemMatrix, WorkOps: 3 * px, MemOps: 3 * px, FixedCycles: 256},
		{Kind: accel.CannyNonMax, WorkOps: 135 * px, MemOps: 20 * px, FixedCycles: 512},
		{Kind: accel.HarrisNonMax, WorkOps: 42 * px, MemOps: 12 * px, FixedCycles: 512},
		{Kind: accel.EdgeTracking, WorkOps: 99 * px, MemOps: 12 * px, FixedCycles: 512},
	}
}

// KernelFor returns the kernel description of a kind.
func KernelFor(kind accel.Kind) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Kind == kind {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("design: no kernel for %v", kind)
}
