// peerctx fixture: outbound HTTP in the serving packages must carry a
// per-attempt context deadline.
package serve

import (
	"context"
	"net/http"
	"net/url"
	"strings"
	"time"
)

var client = &http.Client{}

func packageHelpers(u string) {
	http.Get(u)                     // want `http\.Get issues a deadline-free request`
	http.Post(u, "text/plain", nil) // want `http\.Post issues a deadline-free request`
	http.PostForm(u, url.Values{})  // want `http\.PostForm issues a deadline-free request`
	http.Head(u)                    // want `http\.Head issues a deadline-free request`
}

func contextFreeRequest(u string) {
	http.NewRequest(http.MethodGet, u, nil) // want `http\.NewRequest builds a context-free request`
}

func globalClient(req *http.Request) {
	http.DefaultClient.Do(req) // want `http\.DefaultClient has no timeout`
}

func clientHelpers(u string) {
	client.Get(u)  // want `\(\*http\.Client\)\.Get cannot carry a per-attempt context`
	client.Head(u) // want `\(\*http\.Client\)\.Head cannot carry a per-attempt context`
}

// probe is the blessed shape: a per-attempt deadline, a context-carrying
// request, Client.Do. No diagnostics.
func probe(u string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, strings.NewReader(""))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// transports may reference http.DefaultTransport: the transport carries no
// deadline semantics of its own — the per-request context still governs.
func transport() http.RoundTripper {
	return http.DefaultTransport
}
