package exp

import (
	"testing"

	"relief/internal/workload"
)

// TestSmokeSingleApp runs each application alone under each policy and
// checks basic sanity: the run terminates, all nodes finish, and the
// forwards/colocations never exceed the edge count.
func TestSmokeSingleApp(t *testing.T) {
	for _, policy := range FairnessPolicyNames {
		for app := workload.App(0); app < workload.NumApps; app++ {
			sc := Scenario{
				Mix:        []workload.App{app},
				Contention: workload.Low,
				Policy:     policy,
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", policy, app, err)
			}
			st := res.Stats
			want := len(workload.MustBuild(app).Nodes)
			if st.NodesDone != want {
				t.Errorf("%s/%s: finished %d of %d nodes", policy, app, st.NodesDone, want)
			}
			if st.Forwards+st.Colocations > st.Edges {
				t.Errorf("%s/%s: forwards %d + colocations %d > edges %d",
					policy, app, st.Forwards, st.Colocations, st.Edges)
			}
			a := st.Apps[app.Name()]
			if a == nil || a.Iterations != 1 {
				t.Errorf("%s/%s: expected 1 finished iteration", policy, app)
			}
			t.Logf("%s/%-6s runtime=%v fwd=%d col=%d edges=%d nodeDL=%.1f%%",
				policy, app, a.Runtimes[0], st.Forwards, st.Colocations, st.Edges, st.NodeDeadlinePct())
		}
	}
}
