package exp

import (
	"context"
	"fmt"

	"relief/internal/ckpt"
	"relief/internal/manager"
	"relief/internal/sim"
	"relief/internal/stats"
)

// RunToCheckpoint warms a periodic scenario and captures its state at the
// first quiescent release at or after warmAt, returning the sealed
// relief-ckpt/1 envelope (see internal/ckpt and docs/CHECKPOINT.md). The
// warm run continues draining (cheaply — every remaining release is a
// no-op) to its horizon; its statistics are discarded. It errors if the
// workload never quiesces after warmAt — a saturated mix whose iterations
// overlap has no capturable instant, and callers should fall back to a
// full run.
func RunToCheckpoint(ctx context.Context, sc Scenario, warmAt sim.Time) ([]byte, error) {
	if sc.Period <= 0 {
		return nil, fmt.Errorf("exp: checkpointing requires a periodic scenario (Period > 0)")
	}
	if sc.Trace != nil {
		return nil, fmt.Errorf("exp: tracing cannot cross a checkpoint")
	}
	cfg, err := sc.managerConfig()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	st := stats.New()
	m := manager.New(k, cfg, st)
	m.ArmCheckpoint(warmAt)
	if err := submitMix(m, sc); err != nil {
		return nil, err
	}
	if _, err := finishRun(ctx, sc, k, m, st); err != nil {
		return nil, err
	}
	data, at, err := m.CheckpointData()
	if err != nil {
		return nil, err
	}
	return ckpt.Seal(ScenarioKey(sc), ForkKey(sc), int64(at), data)
}

// RunFromCheckpoint resumes a warmed simulation and runs it to the
// scenario's horizon. The scenario must match the checkpoint's fork key —
// everything except the horizon — and its horizon must lie beyond the
// capture instant. The result is byte-identical to an uninterrupted run of
// the same scenario.
func RunFromCheckpoint(ctx context.Context, sc Scenario, env *ckpt.Envelope) (*Result, error) {
	if sc.Period <= 0 {
		return nil, fmt.Errorf("exp: checkpointing requires a periodic scenario (Period > 0)")
	}
	if sc.Trace != nil {
		return nil, fmt.Errorf("exp: tracing cannot cross a checkpoint")
	}
	if fk := ForkKey(sc); env.ForkKey != fk {
		return nil, fmt.Errorf("exp: checkpoint fork key mismatch:\n  checkpoint %q\n  scenario   %q", env.ForkKey, fk)
	}
	capturedAt := sim.Time(env.CapturedPs)
	if capturedAt >= sc.EffectiveHorizon() {
		return nil, fmt.Errorf("exp: checkpoint captured at %v, at or beyond the %v horizon", capturedAt, sc.EffectiveHorizon())
	}
	cfg, err := sc.managerConfig()
	if err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	m, st, err := manager.Restore(k, cfg, env.Payload)
	if err != nil {
		return nil, err
	}
	if err := submitMix(m, sc); err != nil {
		return nil, err
	}
	return finishRun(ctx, sc, k, m, st)
}
