package workload

import (
	"testing"

	"relief/internal/sim"
)

func TestBuildScaled(t *testing.T) {
	base := MustBuild(Canny)
	big, err := BuildScaled(Canny, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Nodes) != len(base.Nodes) {
		t.Fatal("scaling must not change node count")
	}
	for i, n := range big.Nodes {
		b := base.Nodes[i]
		if n.Pixels != 4*b.Pixels {
			t.Fatalf("node %s pixels %d, want %d", n.Name, n.Pixels, 4*b.Pixels)
		}
		if n.OutputBytes != 4*b.OutputBytes || n.ExtraInputBytes != 4*b.ExtraInputBytes {
			t.Fatalf("node %s buffer sizes not scaled 4x", n.Name)
		}
		// Compute scales linearly with pixel count.
		if n.Compute != 4*b.Compute {
			t.Fatalf("node %s compute %v, want %v", n.Name, n.Compute, 4*b.Compute)
		}
	}
	one, err := BuildScaled(Canny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Nodes[0].Pixels != base.Nodes[0].Pixels {
		t.Fatal("scale 1 must be identity")
	}
}

func TestBuildScaledInvalid(t *testing.T) {
	if _, err := BuildScaled(Canny, 0); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestBuildTiled(t *testing.T) {
	base := MustBuild(Harris)
	tiled, err := BuildTiled(Harris, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiled.Nodes) != 4*len(base.Nodes) {
		t.Fatalf("tiled nodes = %d, want %d", len(tiled.Nodes), 4*len(base.Nodes))
	}
	// Per-tile compute equals the unscaled node compute (scale^2 / tiles =
	// 4/4 = 1), so each tile fits the 128x128-calibrated accelerators.
	var totalCompute, baseCompute sim.Time
	for _, n := range tiled.Nodes {
		totalCompute += n.Compute
	}
	for _, n := range base.Nodes {
		baseCompute += n.Compute
	}
	if totalCompute != 4*baseCompute {
		t.Fatalf("tiled compute %v, want %v", totalCompute, 4*baseCompute)
	}
	if _, err := tiled.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDeblurIterations(t *testing.T) {
	for _, iters := range []int{1, 3, 10} {
		d, err := BuildDeblur(iters)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(d.Nodes), 2+4*iters; got != want {
			t.Fatalf("deblur(%d) has %d nodes, want %d", iters, got, want)
		}
		if _, err := d.TopoOrder(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BuildDeblur(0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestBuildRNNSeqLen(t *testing.T) {
	g, err := BuildRNN(GRU, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Nodes), 2+4*14; got != want {
		t.Fatalf("gru(4) has %d nodes, want %d", got, want)
	}
	l, err := BuildRNN(LSTM, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(l.Nodes), 6+2*16; got != want {
		t.Fatalf("lstm(2) has %d nodes, want %d", got, want)
	}
	if _, err := BuildRNN(Canny, 8); err == nil {
		t.Fatal("non-RNN accepted")
	}
	if _, err := BuildRNN(GRU, 0); err == nil {
		t.Fatal("zero sequence accepted")
	}
}
