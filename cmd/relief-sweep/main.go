// relief-sweep drives a relief-serve fleet through one sweep: it streams a
// grid spec to a coordinator replica (POST /sweep with "stream": true),
// watches per-cell NDJSON results land, and merges them locally into the
// same sorted relief-metrics cell document a single-process exp sweep
// dumps — byte-identical regardless of fleet size or which replica computed
// each cell.
//
// The client is resumable: finished cells are kept (deduplicated by content
// digest) across stream failures, so when a coordinator dies mid-sweep the
// client re-issues the sweep to the next replica and only the missing cells
// cost anything — the fleet's caches already hold the rest. A sweep fails
// only when every replica is unreachable or the -timeout budget expires.
//
// Usage:
//
//	relief-sweep -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 -spec sweep.json
//	echo '{"contention":["low"]}' | relief-sweep -replicas http://127.0.0.1:8081 -out cells.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"relief/internal/exp"
	"relief/internal/serve"
	"relief/internal/svctrace"
)

// maxPasses bounds how many full rounds over the replica list the client
// makes before giving up (each pass only recomputes still-missing cells).
const maxPasses = 3

// sweepClient issues the sweep streams. Attempts are bounded by the
// -timeout context on each request, not a client-wide timeout (a streamed
// sweep legitimately stays open for the whole grid).
var sweepClient = &http.Client{}

// line mirrors the server's NDJSON framing: the header carries schema/cells,
// per-cell lines carry index/digest/source and the result or error, the
// trailer carries done/ok/errors.
type line struct {
	Schema string        `json:"schema"`
	Cells  int           `json:"cells"`
	Index  *int          `json:"index"`
	Digest string        `json:"digest"`
	Source string        `json:"source"`
	Error  string        `json:"error"`
	Result *serve.Result `json:"result"`
	Done   bool          `json:"done"`
	OK     int           `json:"ok"`
	Errors int           `json:"errors"`
}

func main() {
	replicasFlag := flag.String("replicas", "", "comma-separated replica base URLs (tried in order)")
	specPath := flag.String("spec", "-", `sweep spec JSON file ("-" = stdin)`)
	outPath := flag.String("out", "-", `merged cell document destination ("-" = stdout)`)
	timeout := flag.Duration("timeout", 10*time.Minute, "overall budget across all replica attempts")
	quiet := flag.Bool("q", false, "suppress per-source progress on stderr")
	flag.Parse()

	var replicas []string
	for _, r := range strings.Split(*replicasFlag, ",") {
		if r = strings.TrimRight(strings.TrimSpace(r), "/"); r != "" {
			replicas = append(replicas, r)
		}
	}
	if len(replicas) == 0 {
		fatal(fmt.Errorf("no replicas (use -replicas http://host:port,...)"))
	}

	specBytes, err := readSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	var spec serve.SweepSpec
	if err := json.Unmarshal(specBytes, &spec); err != nil {
		fatal(fmt.Errorf("parsing sweep spec: %w", err))
	}
	spec.Stream = true
	body, err := json.Marshal(spec)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cells, err := fleetSweep(ctx, replicas, body, *quiet)
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := exp.WriteCells(out, cells); err != nil {
		fatal(err)
	}
}

// sweeper accumulates finished cells across replica attempts. Cells are
// keyed by content digest, so a cell replayed by a second coordinator
// (already computed fleet-side, served from cache) merges into the same
// slot instead of duplicating.
type sweeper struct {
	have     map[string]exp.Cell
	total    int // grid size from the stream header; -1 until seen
	quiet    bool
	bySource map[string]int
	// traceID is the sweep's one distributed trace ID, minted client-side
	// and sent as X-Relief-Trace on every attempt, so one failed-over sweep
	// correlates across every coordinator's logs and GET /trace/{id} docs.
	traceID string
}

func newSweeper(quiet bool) *sweeper {
	return &sweeper{have: map[string]exp.Cell{}, total: -1, quiet: quiet, bySource: map[string]int{}, traceID: svctrace.NewID()}
}

// complete reports whether every grid cell has landed.
func (sw *sweeper) complete() bool { return sw.total >= 0 && len(sw.have) == sw.total }

// cells returns the merged cell set (WriteCells sorts it canonically).
func (sw *sweeper) cells() []exp.Cell {
	out := make([]exp.Cell, 0, len(sw.have))
	for _, c := range sw.have { //lint:allow maporder exp.WriteCells sorts the document by scenario key
		out = append(out, c)
	}
	return out
}

// fleetSweep runs the sweep to completion across the replica list: stream
// from the first reachable coordinator, and on a mid-stream death carry the
// finished cells over to the next replica. Per-cell errors are tolerated
// per attempt (the cell retries on a later pass); the sweep succeeds when
// every cell has landed.
func fleetSweep(ctx context.Context, replicas []string, body []byte, quiet bool) ([]exp.Cell, error) {
	sw := newSweeper(quiet)
	if !quiet {
		fmt.Fprintf(os.Stderr, "relief-sweep: trace %s\n", sw.traceID)
	}
	var lastErr error
	for pass := 0; pass < maxPasses; pass++ {
		for _, replica := range replicas {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sweep budget exhausted with %d/%d cells: %w", len(sw.have), sw.total, err)
			}
			before := len(sw.have)
			err := sw.stream(ctx, replica, body)
			if sw.complete() {
				if !quiet {
					fmt.Fprintf(os.Stderr, "relief-sweep: %d cells done (%s)\n", sw.total, sourceSummary(sw.bySource))
				}
				return sw.cells(), nil
			}
			if err != nil {
				lastErr = err
				fmt.Fprintf(os.Stderr, "relief-sweep: %s: %v — %d/%d cells held, resuming on next replica (trace %s)\n",
					replica, err, len(sw.have), sw.total, sw.traceID)
				continue
			}
			if len(sw.have) == before {
				// A clean stream that added nothing will not converge by
				// repetition (cells erroring deterministically): remember why.
				lastErr = fmt.Errorf("%s: stream completed but %d/%d cells still missing", replica, sw.total-len(sw.have), sw.total)
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no replica produced a complete sweep")
	}
	return nil, fmt.Errorf("sweep incomplete after %d passes (%d/%d cells): %w", maxPasses, len(sw.have), sw.total, lastErr)
}

// stream runs one sweep attempt through one coordinator, folding finished
// cells into sw. Transport errors, a broken stream, and a missing trailer
// are attempt errors (the caller resumes elsewhere); per-cell errors are
// recorded but do not abort the attempt.
func (sw *sweeper) stream(ctx context.Context, replica string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/sweep", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(svctrace.Header, sw.traceID)
	resp, err := sweepClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(b)))
	}

	seen, cellErrs := 0, 0
	gotTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case l.Schema != "":
			if l.Schema != serve.SweepSchema {
				return fmt.Errorf("unexpected stream schema %q", l.Schema)
			}
			if sw.total >= 0 && l.Cells != sw.total {
				return fmt.Errorf("grid size changed across attempts: %d then %d cells", sw.total, l.Cells)
			}
			sw.total = l.Cells
		case l.Done:
			gotTrailer = true
		case l.Index != nil:
			seen++
			if l.Error != "" {
				cellErrs++
				// The replica URL and trace ID name which coordinator's logs
				// (and GET /trace/{id} doc) explain this cell's failure.
				fmt.Fprintf(os.Stderr, "relief-sweep: cell %d (%.12s) failed on %s: %s (will retry, trace %s)\n",
					*l.Index, l.Digest, replica, l.Error, sw.traceID)
				continue
			}
			if l.Result == nil || l.Result.Cell == nil {
				cellErrs++
				continue
			}
			if _, dup := sw.have[l.Digest]; !dup {
				sw.have[l.Digest] = *l.Result.Cell
				sw.bySource[l.Source]++
			}
			if !sw.quiet {
				fmt.Fprintf(os.Stderr, "relief-sweep: [%d/%d] %.12s %s\n", len(sw.have), sw.total, l.Digest, l.Source)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !gotTrailer {
		return fmt.Errorf("stream ended without trailer (%d cells this attempt)", seen)
	}
	if cellErrs > 0 {
		return fmt.Errorf("%d of %d cells failed this attempt", cellErrs, sw.total)
	}
	return nil
}

func sourceSummary(bySource map[string]int) string {
	var parts []string
	for _, src := range []string{"run", "cache", "disk", "peer", "forward"} {
		if n := bySource[src]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", src, n))
		}
	}
	if len(parts) == 0 {
		return "no cells"
	}
	return strings.Join(parts, ", ")
}

func readSpec(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "relief-sweep: %v\n", err)
	os.Exit(1)
}
