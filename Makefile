GO ?= go

.PHONY: all build test vet lint race bench bench-smoke bench-report ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (determinism / hot-path / API
# invariants; see docs/LINTING.md), plus staticcheck when installed.
lint:
	$(GO) run ./cmd/relief-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Race-detector pass over the short suite (the golden digests and long
# sweeps are skipped; the parallel sweep harness is the code under test).
race:
	$(GO) test -race -short ./...

# Full benchmark sweep (slow): every figure/table benchmark, with
# allocation stats.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One-iteration smoke of the hot-path benchmark; keeps CI honest about
# simulator throughput without the full sweep's cost.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig4$$' -benchtime=1x -benchmem .

# Dated benchmark report at the repo root: the full experiment trajectory
# plus distributed sweep throughput (POST /sweep against in-process fleets
# of 1 and 3 replicas). Schema relief-bench/1; see docs/MODEL.md.
bench-report:
	$(GO) run ./cmd/relief-bench -benchjson auto -sweepbench >/dev/null

ci:
	./scripts/ci.sh

clean:
	rm -f BENCH_*.json cpu.out mem.out trace.out
