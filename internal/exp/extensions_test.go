package exp

import (
	"strings"
	"testing"

	"relief/internal/workload"
)

// TestDRAMStudySubstitutionHolds: the bank-level DRAM model must not
// change the policy story — RELIEF's makespans stay within 10% of the
// calibrated simple model (the DESIGN.md substitution argument), on a
// couple of representative mixes.
func TestDRAMStudySubstitutionHolds(t *testing.T) {
	s := NewSweep()
	for _, mixName := range []string{"CGL", "CDH"} {
		mix, err := workload.ParseMix(mixName)
		if err != nil {
			t.Fatal(err)
		}
		simple, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF"})
		if err != nil {
			t.Fatal(err)
		}
		detailed, err := s.Get(Scenario{Mix: mix, Contention: workload.High, Policy: "RELIEF", DetailedDRAM: true})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(detailed.Stats.Makespan) / float64(simple.Stats.Makespan)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: detailed/simple makespan = %.3f, want within 10%%", mixName, ratio)
		}
		if detailed.RowHitRate < 0.9 {
			t.Errorf("%s: row hit rate %.2f, streaming DMA should hit", mixName, detailed.RowHitRate)
		}
		if simple.RowHitRate != 0 {
			t.Error("simple model must not report a row hit rate")
		}
	}
}

// TestPeriodicStudyShape: the table renders with one row per mix and
// RELIEF keeps every periodic CGL frame on deadline while LAX starves.
func TestPeriodicStudyShape(t *testing.T) {
	tbl, err := PeriodicStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	var cgl []string
	for _, r := range tbl.Rows {
		if r[0] == "CGL" {
			cgl = r
		}
	}
	if cgl == nil {
		t.Fatal("CGL row missing")
	}
	// Column order follows FairnessPolicyNames; find LAX and RELIEF.
	idx := func(name string) int {
		for i, c := range tbl.Cols {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	lax := cgl[idx("LAX")]
	relief := cgl[idx("RELIEF")]
	if !strings.Contains(lax, "inf") && !strings.HasPrefix(lax, "0/") {
		// LAX should starve at least one app (inf slowdown) under the
		// periodic CGL load.
		t.Errorf("LAX periodic CGL cell %q shows no starvation", lax)
	}
	parts := strings.Split(relief, "/")
	if len(parts) != 3 || parts[0] != parts[1] {
		t.Errorf("RELIEF periodic CGL cell %q: expected all finished frames on deadline", relief)
	}
}

// TestTiledStudyShape: the tiled interconnect study runs and reports
// finite makespans for both topologies.
func TestTiledStudyShape(t *testing.T) {
	tbl, err := TiledStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range tbl.Rows {
		if r[1] == "0.00" || r[2] == "0.00" {
			t.Errorf("mix %s: zero makespan", r[0])
		}
	}
}

// TestAnalyticVsSimulatedNoForwarding cross-validates the whole pipeline:
// for each application alone with forwarding disabled, the sum of the
// node-level DMA wall time measured by the simulator must land near the
// Table II analytic memory total (bytes / effective bandwidth). Queueing
// makes the simulated sum slightly higher; DMA pipelining can make it
// slightly lower.
func TestAnalyticVsSimulatedNoForwarding(t *testing.T) {
	analytic, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	noFwd := map[string]float64{}
	for _, row := range analytic.Rows {
		noFwd[row[0]] = parseF(t, row[2])
	}
	for a := workload.App(0); a < workload.NumApps; a++ {
		res, err := Run(Scenario{
			Mix:               []workload.App{a},
			Contention:        workload.Low,
			Policy:            "FCFS",
			DisableForwarding: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		// All traffic through DRAM: simulated bytes equal the analytic
		// baseline exactly.
		if st.DRAMReadBytes+st.DRAMWriteBytes != st.BaselineBytes {
			t.Fatalf("%v: traffic %d != baseline %d", a,
				st.DRAMReadBytes+st.DRAMWriteBytes, st.BaselineBytes)
		}
		simulatedUS := float64(st.BaselineBytes) / 6.4e9 * 1e6
		if rel := simulatedUS/noFwd[a.Name()] - 1; rel < -0.01 || rel > 0.01 {
			t.Errorf("%v: simulated traffic time %.1fus vs analytic %.1fus",
				a, simulatedUS, noFwd[a.Name()])
		}
	}
}

// TestScalingStudyShape exercises the instance-scaling extension.
func TestScalingStudyShape(t *testing.T) {
	tbl, err := ScalingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 || len(tbl.Rows[0]) != len(tbl.Cols) {
		t.Fatal("malformed scaling table")
	}
	// More instances never slow the GL mix down.
	var prev float64 = 1e18
	for _, r := range tbl.Rows {
		if r[0] != "GL" {
			continue
		}
		v := parseF(t, r[1])
		if v > prev*1.02 {
			t.Errorf("GL makespan grew with more instances: %v -> %v", prev, v)
		}
		prev = v
	}
}
