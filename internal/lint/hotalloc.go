package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"relief/internal/lint/analysis"
)

// hotpathDirective marks a function whose body must stay allocation-free.
// It goes in the function's doc comment:
//
//	// push inserts e into the 4-ary heap.
//	//relief:hotpath
//	func (k *Kernel) push(e *Event) { ... }
//
// PR 1's zero-alloc event kernel, DMA chunking, and DRAM burst paths carry
// the annotation; HotAlloc keeps them honest.
const hotpathDirective = "//relief:hotpath"

// HotAlloc flags allocation-causing constructs inside functions annotated
// //relief:hotpath: closures, composite literals that allocate (&T{...},
// slice and map literals), make/new/append calls, and interface boxing of
// concrete values at call sites. Amortized or pool-refill allocations that
// are intentional carry a //lint:allow hotalloc directive with a reason.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocations (composite literals, make/new/append, closures, " +
		"interface conversions) in functions annotated //relief:hotpath",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// isHotpath reports whether the function's doc comment contains the
// //relief:hotpath directive. Directive comments are excluded from
// Doc.Text(), so the raw comment list is scanned.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure allocated in hotpath function %s; hoist it to a field or package-level func", name)
			return false // the closure body runs later; it is not this hot path
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if lit, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && !litIsSliceOrMap(pass, lit) {
					// Slice/map literals are reported by the CompositeLit
					// case below; avoid double-reporting &[]T{...}.
					pass.Reportf(e.Pos(), "&composite literal escapes to the heap in hotpath function %s", name)
				}
			}
		case *ast.CompositeLit:
			if litIsSliceOrMap(pass, e) {
				pass.Reportf(e.Pos(), "slice/map literal allocates in hotpath function %s", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, e)
		}
		return true
	})
}

func litIsSliceOrMap(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func checkHotCall(pass *analysis.Pass, fname string, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make() allocates in hotpath function %s", fname)
			case "new":
				pass.Reportf(call.Pos(), "new() allocates in hotpath function %s", fname)
			case "append":
				pass.Reportf(call.Pos(), "append may grow the backing array in hotpath function %s", fname)
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				pass.Reportf(call.Pos(), "conversion to interface boxes its operand in hotpath function %s", fname)
			}
		}
		return
	}
	// Implicit boxing: a concrete argument passed for an interface-typed
	// parameter (including ...any variadics, e.g. fmt.Sprintf).
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through; no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || types.IsInterface(atv.Type) {
			continue
		}
		if b, ok := atv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxed into interface parameter in hotpath function %s", fname)
	}
}
