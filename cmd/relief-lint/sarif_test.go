package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"relief/internal/lint"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSARIFGolden pins the emitted SARIF 2.1.0 document byte-for-byte:
// schema and version header, the full ten-rule table, and one result per
// finding with its physical location. Regenerate with `go test
// ./cmd/relief-lint -run SARIF -update` after a deliberate format change.
func TestSARIFGolden(t *testing.T) {
	findings := []lint.Finding{
		{
			File: "internal/sim/sim.go", Line: 42, Col: 7,
			Analyzer: "hotalloc",
			Message:  "make() allocates in hotpath function push",
		},
		{
			File: "internal/serve/cache.go", Line: 9, Col: 2,
			Analyzer: "lockcheck",
			Message:  "s.cache is guarded by s.mu, which is not held here",
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, findings); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "findings.sarif")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestSARIFEmpty checks the zero-findings document stays a well-formed
// log: a non-null results array and the complete rule table, so CI can
// upload it unconditionally.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	if got := len(log.Runs[0].Tool.Driver.Rules); got != len(lint.All()) {
		t.Errorf("rule table has %d entries, want %d (one per analyzer)", got, len(lint.All()))
	}
	if string(log.Runs[0].Results) != "[]" {
		t.Errorf("results = %s, want [] (never null)", log.Runs[0].Results)
	}
}
